"""Autoscaling cluster simulator: cold starts under real request traffic.

Models the serverless/spot serving loop of the paper's introduction: a
pool of instances serves a request trace; a request landing on a warm,
idle instance runs at hot latency, while one that must spawn a fresh
instance pays the full cold start of the configured scheme.  Instances
are reclaimed after a keep-alive timeout, so sparse traffic keeps
re-triggering cold starts.

The per-request service times come from the deterministic simulation
(:class:`~repro.serving.server.InferenceServer`); the cluster layer adds
queueing, autoscaling and keep-alive on top.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.core.schemes import Scheme
from repro.obs.monitors import emit_alert_spans
from repro.packs.artifact import pack_for
from repro.packs.store import (PackPolicy, PackStoreState,
                               PackTransferCounters, feed_pack_metrics)
from repro.serving.metrics import percentile as nearest_rank_percentile
from repro.serving.requests import RequestTrace
from repro.serving.resilience import ResiliencePolicy, ResilienceState
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultInjector, FaultPlan
from repro.sim.trace import RETENTION_POLICIES, Phase, TraceRecorder

__all__ = ["ClusterConfig", "ClusterStats", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster policy knobs."""

    scheme: Scheme = Scheme.BASELINE
    max_instances: int = 8
    keep_alive_s: float = 10.0     # idle instances reclaimed after this
    # Optional fault plan: instance crash/restart churn during the
    # replay (``cluster.request`` injection point).
    faults: Optional[FaultPlan] = None
    # Request-level tracing: ``None`` (default) records nothing, keeping
    # the replay byte-identical to the pre-tracing simulator; ``"full"``
    # retains every per-request interval; ``"aggregate"`` retains only
    # streaming aggregates plus a ``trace_ring``-bounded ring of recent
    # records (see repro.sim.trace).
    trace_retention: Optional[str] = None
    trace_ring: int = 1024
    # Analytic fast-forward: requests are replayed through an O(log n)
    # heap recurrence instead of the full scheduling scan — including
    # partial-warm pools (cold spawns become a warm-up frontier in the
    # heap), keep-alive reclaims, and fault plans (the replay
    # fast-forwards *between* pre-sampled fault sites).  Results are
    # byte-identical either way (pinned by tests); the knob exists so
    # benchmarks can measure the win.  A non-inert resilience policy
    # still forces event stepping.
    fast_forward: bool = True
    # Resilience layer (repro.serving.resilience): warm-state
    # checkpoint/restore, crash-loop supervision, admission control and
    # graceful drain.  ``None`` (default) -- and any *inert* policy --
    # leaves the replay byte-identical to the pre-resilience simulator.
    resilience: Optional[ResiliencePolicy] = None
    # Kernel-pack fetch hierarchy (repro.packs): cold spawns try to
    # restore warm state from a content-addressed pack — local disk,
    # then a warm peer, then the origin registry — before degrading to
    # the full cold load.  ``None`` (default) is byte-inert; the pack
    # fault sites are never consulted even if the fault plan carries
    # pack rates or outage windows.
    packs: Optional[PackPolicy] = None

    def __post_init__(self) -> None:
        if self.max_instances <= 0:
            raise ValueError("need at least one instance")
        if (self.packs is not None and self.resilience is not None
                and not self.resilience.is_inert):
            raise ValueError(
                "kernel packs and a non-inert resilience policy both "
                "redefine the cold-spawn path; configure one of them "
                "(checkpoint/restore already ships warm state per "
                "instance — packs generalize it across instances)")
        if self.keep_alive_s < 0:
            raise ValueError("keep-alive must be non-negative")
        if (self.trace_retention is not None
                and self.trace_retention not in RETENTION_POLICIES):
            raise ValueError(
                f"unknown trace retention {self.trace_retention!r}; "
                f"expected None or one of {RETENTION_POLICIES}")
        if self.trace_ring <= 0:
            raise ValueError("trace_ring must be positive")


@dataclass
class _Instance:
    busy_until: float = 0.0
    last_used: float = 0.0
    warm: bool = False
    # --- resilience bookkeeping (inert unless a policy is attached) ---
    frac_base: float = 0.0        # warm fraction at start of this life
    life_start: float = 0.0       # checkpoint-timeline origin
    ramp_start: float = 0.0       # loading ramp of the first cold serve
    ramp_end: float = 0.0
    served: int = 0               # requests completed this life
    consecutive_crashes: int = 0  # crash-loop backoff exponent
    crash_times: List[float] = field(default_factory=list)
    breaker_open: bool = False
    breaker_until: float = 0.0    # cooldown end; half-open afterwards
    open_streak: int = 0          # consecutive opens (cooldown escalation)


@dataclass
class ClusterStats:
    """Outcome of one trace replay."""

    latencies: List[float] = field(default_factory=list)
    cold_starts: int = 0
    warm_hits: int = 0
    queue_waits: List[float] = field(default_factory=list)
    failed: int = 0   # requests explicitly failed (reroute budget spent)
    shed: int = 0     # requests rejected up front by admission control
    faults: FaultCounters = field(default_factory=FaultCounters)
    # Request-level trace (None unless ClusterConfig.trace_retention set).
    trace: Optional[TraceRecorder] = None
    # Requests replayed through the steady-state fast path.
    fast_forwarded: int = 0
    # Cold spawns restored from a kernel pack instead of a full cold
    # load (counted separately from cold_starts so the hierarchy's
    # savings are directly measurable).
    pack_restores: int = 0
    # Pack fetch-hierarchy accounting (None unless ClusterConfig.packs
    # is set), including the byte-conservation ledger.
    packs: Optional[PackTransferCounters] = None

    @property
    def completed(self) -> int:
        """Requests that finished successfully."""
        return len(self.latencies)

    @property
    def requests(self) -> int:
        """Total requests accounted for: every offered request is
        exactly one of completed, explicitly failed, or shed."""
        return len(self.latencies) + self.failed + self.shed

    @property
    def availability(self) -> float:
        """Fraction of *served* requests that completed successfully.

        Shed requests are excluded from the denominator: admission
        control rejects them immediately with a well-defined error
        (the shed-adjusted availability the SLO is stated against),
        which is not the same failure as a request that was accepted
        and then lost.  With nothing shed this is exactly the historic
        completed/requests ratio.
        """
        finished = self.completed + self.failed
        if not finished:
            return 1.0
        return self.completed / finished

    @property
    def mean_latency(self) -> float:
        """Arithmetic mean of per-request latency.

        ``0.0`` when nothing completed (e.g. every request was
        explicitly failed by a fault plan) — a replay must always be
        reportable, crash-free, whatever the fault plan did.
        """
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """The q-quantile (0..1) of request latency, by nearest rank.

        Delegates to :func:`repro.serving.metrics.percentile` (the same
        definition the metrics registry summaries use), except that an
        empty sample returns ``0.0`` instead of raising, for the same
        reason as :attr:`mean_latency`.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if not self.latencies:
            return 0.0
        return nearest_rank_percentile(self.latencies, q)

    @property
    def cold_start_fraction(self) -> float:
        """Share of requests that paid a cold start."""
        return self.cold_starts / self.requests if self.requests else 0.0


# Per-server service-time memo shared by every ClusterSimulator built on
# that server: replaying many traces (or many fault plans) against the
# same (scheme, model, batch) re-simulates the cold/hot serve exactly
# once per process instead of once per simulator.  Keyed weakly so a
# discarded server releases its entries.  Service times are always
# simulated fault-free (crashes are injected at the cluster layer), so
# sharing across configs with different fault plans is sound.
_SERVICE_TIMES: "WeakKeyDictionary[InferenceServer, Dict[Tuple, float]]" = \
    WeakKeyDictionary()


class ClusterSimulator:
    """Replays a request trace against an autoscaled instance pool."""

    def __init__(self, server: InferenceServer, config: ClusterConfig,
                 metrics=None, spans=None, monitors=None) -> None:
        self.server = server
        self.config = config
        # Telemetry (repro.obs), all optional.  ``spans`` requires a
        # trace retention policy — spans mirror the cluster's trace
        # records, including the ones the fast-forward path synthesizes.
        # ``monitors`` (an SLOMonitorSet) observes every completed /
        # failed request from the stepping loop; it needs the
        # per-request stream, so fast-forward must be off.
        self.metrics = metrics
        self.spans = spans
        self.monitors = monitors
        if monitors is not None and config.fast_forward:
            raise ValueError(
                "SLO monitors evaluate the per-request stepping stream; "
                "build the ClusterConfig with fast_forward=False")
        if metrics is not None:
            self._m_requests = metrics.counter(
                "cluster_requests_total", "Requests served by outcome")
            self._m_queue_wait = metrics.histogram(
                "cluster_queue_wait_seconds", "Request queueing delay")
            self._m_latency = metrics.histogram(
                "cluster_latency_seconds", "End-to-end request latency")
        try:
            self._service_times = _SERVICE_TIMES.setdefault(server, {})
        except TypeError:  # non-weakref-able server stand-in (tests)
            self._service_times = {}

    def _cold_time(self, model: str, batch: int,
                   scheme: Optional[Scheme] = None) -> float:
        scheme = self.config.scheme if scheme is None else scheme
        key = ("cold", scheme, model, batch)
        if key not in self._service_times:
            result = self.server.serve_cold(model, scheme, batch)
            self._service_times[key] = result.total_time
        return self._service_times[key]

    def _warm_time(self, model: str, batch: int) -> float:
        key = ("hot", model, batch)
        if key not in self._service_times:
            self._service_times[key] = \
                self.server.serve_hot(model, batch).total_time
        return self._service_times[key]

    def run(self, trace: RequestTrace) -> ClusterStats:
        """Replay ``trace`` and collect per-request statistics.

        With a fault plan configured, instances may crash mid-request
        (``cluster.request`` injection point): the request is rerouted
        to another instance (up to ``max_reroutes`` times before it is
        *explicitly failed*), and the crashed instance restarts cold --
        its PASK cache is gone, so the next request it serves pays the
        full cold start again.  Every request is therefore accounted
        for: ``stats.completed + stats.failed == len(trace)``.

        Whenever every pooled instance is warm (vacuously from the very
        first arrival), requests are fast-forwarded through
        :meth:`_fast_forward` — cold spawns, reclaims and queueing
        included.  With a fault plan, the injector pre-samples the next
        ``cluster.request`` failure and the window up to it replays
        analytically; the crash itself (and the pool until it is
        all-warm again) goes through the event stepping below, so
        crash/reroute accounting is identical draw-for-draw.
        """
        config = self.config
        stats = ClusterStats()
        if config.trace_retention is not None:
            stats.trace = TraceRecorder(retention=config.trace_retention,
                                        ring_size=config.trace_ring)
        recorder = stats.trace
        if self.spans is not None and recorder is not None:
            self.spans.bind(recorder)
        injector: Optional[FaultInjector] = (
            config.faults.injector() if config.faults is not None else None)
        if injector is not None:
            stats.faults = injector.counters
        counters = stats.faults
        instances: List[_Instance] = []
        cold = self._cold_time(trace.model, trace.batch)
        warm = self._warm_time(trace.model, trace.batch)
        # Cold starts split into the extra spin-up cost (LOAD) and the
        # steady service tail (EXEC) for trace accounting.
        cold_extra = cold - warm if cold > warm else 0.0
        # Resilience layer: an inert policy is equivalent to none at
        # all, so the replay below stays byte-identical (golden tests).
        policy = config.resilience
        resilience: Optional[ResilienceState] = None
        if policy is not None and not policy.is_inert:
            degraded_cold = (
                self._cold_time(trace.model, trace.batch, Scheme.BASELINE)
                if policy.degrade_wait_s is not None else cold)
            restart_delay = (config.faults.restart_delay_s
                             if config.faults is not None
                             else FaultPlan().restart_delay_s)
            resilience = ResilienceState(policy, counters, recorder,
                                         warm, cold_extra, degraded_cold,
                                         restart_delay)
        # Kernel-pack hierarchy: derive the content-addressed pack for
        # this (scheme, model, batch) and stand up the per-replay fetch
        # ladder.  ``packs=None`` builds nothing — the replay below is
        # byte-identical to the pre-packs simulator.
        pack_state: Optional[PackStoreState] = None
        if config.packs is not None:
            pack = pack_for(self.server, trace.model, config.scheme,
                            trace.batch)
            pack_state = PackStoreState(config.packs, pack, injector,
                                        recorder)
            stats.packs = pack_state.counters
        arrivals = trace.arrivals
        # Fast-forward covers the fault-free dynamics in full — warm
        # steady state, partial-warm pools (cold spawns fold into the
        # heap as a warm-up frontier) and keep-alive reclaims.  With a
        # fault plan attached it runs *between* pre-sampled fault
        # sites: the injector previews how many ``cluster.request``
        # draws survive, that window replays analytically, and the
        # surviving draws are consumed in bulk so the downstream fault
        # sequence is byte-identical to stepping.  Only a non-inert
        # resilience policy (stateful per-instance machinery) forces
        # full event stepping.
        can_fast_forward = (config.fast_forward and resilience is None
                            and pack_state is None)
        crash_rate = (config.faults.crash_rate
                      if config.faults is not None else 0.0)
        index, n = 0, len(arrivals)
        while index < n:
            if can_fast_forward and all(inst.warm for inst in instances):
                if injector is None:
                    limit = n
                else:
                    limit = index + injector.preview_failures(
                        "cluster.request", crash_rate, n - index)
                if limit > index:
                    processed = self._fast_forward(
                        arrivals, index, limit, instances, warm, cold,
                        cold_extra, stats, recorder) - index
                    if injector is not None:
                        if crash_rate > 0.0:
                            injector.advance("cluster.request", processed)
                        counters.completed_requests += processed
                    index += processed
                if index >= n:
                    break
            arrival = arrivals[index]
            index += 1
            now = arrival
            attempts = 0
            while True:
                self._reclaim_idle(instances, now)
                if resilience is None:
                    instance = self._pick_instance(instances, now)
                    if instance is None:
                        if len(instances) < config.max_instances:
                            instance = _Instance()
                            instances.append(instance)
                        else:
                            # All instances busy at capacity: queue on
                            # the one that frees up first.
                            instance = min(instances,
                                           key=lambda i: i.busy_until)
                    start = max(now, instance.busy_until)
                else:
                    instance = self._pick_routable(instances, now)
                    if instance is None:
                        if len(instances) < config.max_instances:
                            instance = _Instance(life_start=now)
                            instances.append(instance)
                            start = now
                        else:
                            # Queue on the earliest *routable* instant:
                            # breaker-open instances only become usable
                            # at their half-open probe time.
                            instance = min(instances,
                                           key=ResilienceState.ready_at)
                            start = max(now,
                                        ResilienceState.ready_at(instance))
                    else:
                        start = now
                    if attempts == 0 and not resilience.admit(now, start):
                        stats.shed += 1
                        break
                if attempts == 0:
                    stats.queue_waits.append(start - arrival)
                warm_attempt = instance.warm
                pack_tier: Optional[str] = None
                if resilience is None:
                    if warm_attempt or pack_state is None:
                        service = warm if warm_attempt else cold
                    else:
                        # Cold spawn with a pack hierarchy: walk the
                        # fetch ladder first.  A hit bills the fetch,
                        # the apply, and the warm serve; degradation
                        # bills the (bounded) ladder walk plus the full
                        # cold load — no request is ever lost to a dark
                        # hierarchy.
                        peer = any(other.warm for other in instances
                                   if other is not instance)
                        fetch = pack_state.fetch(start, peer)
                        if fetch.hit:
                            pack_tier = fetch.tier
                            service = (fetch.elapsed_s
                                       + pack_state.apply_s + warm)
                        else:
                            service = fetch.elapsed_s + cold
                else:
                    service = (warm if warm_attempt
                               else resilience.cold_service(
                                   instance.frac_base, cold))
                    resilience.on_scheduled(instance, start, service,
                                            warm_attempt)
                crash_at = (injector.crash_point(service)
                            if injector is not None else None)
                if crash_at is None:
                    if warm_attempt:
                        stats.warm_hits += 1
                    elif pack_tier is not None:
                        stats.pack_restores += 1
                    else:
                        stats.cold_starts += 1
                    finish = start + service
                    instance.busy_until = finish
                    instance.last_used = finish
                    instance.warm = True
                    stats.latencies.append(finish - arrival)
                    if recorder is not None:
                        if warm_attempt:
                            recorder.record(start, finish, "cluster",
                                            Phase.EXEC, "serve")
                        else:
                            boundary = start + (service - warm
                                                if service > warm else 0.0)
                            load_name = ("cold-start" if pack_tier is None
                                         else f"pack-restore/{pack_tier}")
                            recorder.record(start, boundary, "cluster",
                                            Phase.LOAD, load_name)
                            recorder.record(boundary, finish, "cluster",
                                            Phase.EXEC, "serve")
                    if injector is not None or resilience is not None:
                        counters.completed_requests += 1
                    if resilience is not None:
                        resilience.on_complete(instance, finish)
                    if self.monitors is not None:
                        fresh = self.monitors.observe_completed(
                            arrival, finish - arrival, not warm_attempt)
                        if fresh and self.spans is not None:
                            emit_alert_spans(self.spans, fresh)
                    break
                # The instance dies crash_at seconds into the request;
                # the supervisor restarts it (cold by default, from the
                # freshest clean checkpoint under a resilience policy)
                # and it re-enters the pool once the restart completes.
                counters.crashes += 1
                crash_time = start + crash_at
                if resilience is None:
                    instance.busy_until = crash_time + \
                        config.faults.restart_delay_s
                    instance.last_used = instance.busy_until
                    instance.warm = False
                else:
                    resilience.on_crash(instance, crash_time, injector)
                if recorder is not None:
                    recorder.record(start, crash_time, "cluster",
                                    Phase.FAULT, "crash")
                attempts += 1
                if attempts > config.faults.max_reroutes:
                    stats.failed += 1
                    counters.failed_requests += 1
                    if self.monitors is not None:
                        fresh = self.monitors.observe_failed(arrival)
                        if fresh and self.spans is not None:
                            emit_alert_spans(self.spans, fresh)
                    break
                # Reroute: the request re-enters scheduling at the time
                # the crash was detected.
                counters.reroutes += 1
                now = crash_time
        if self.metrics is not None:
            # Fed once from the collected stats (covers both the
            # stepping and fast-forward paths) so the hot scheduling
            # loop stays untouched.
            label = self.config.scheme.label
            if stats.warm_hits:
                self._m_requests.inc(stats.warm_hits,
                                     outcome="warm", scheme=label)
            if stats.cold_starts:
                self._m_requests.inc(stats.cold_starts,
                                     outcome="cold", scheme=label)
            if stats.failed:
                self._m_requests.inc(stats.failed,
                                     outcome="failed", scheme=label)
            if stats.shed:
                self._m_requests.inc(stats.shed,
                                     outcome="shed", scheme=label)
            if stats.pack_restores:
                self._m_requests.inc(stats.pack_restores,
                                     outcome="pack", scheme=label)
            if pack_state is not None:
                feed_pack_metrics(self.metrics, pack_state.counters,
                                  scheme=label)
            if resilience is not None:
                actions = self.metrics.counter(
                    "cluster_resilience_total",
                    "Resilience-layer actions by kind")
                for kind, value in (
                        ("shed", counters.shed_requests),
                        ("breaker_open", counters.breaker_opens),
                        ("breaker_probe", counters.breaker_probes),
                        ("warm_restore", counters.warm_restores),
                        ("restore_failure", counters.restore_failures),
                        ("checkpoint_corruption",
                         counters.checkpoint_corruptions),
                        ("drain", counters.drains),
                        ("degraded", counters.degraded_requests)):
                    if value:
                        actions.inc(value, kind=kind, scheme=label)
            wait_series = self._m_queue_wait.labels(scheme=label)
            for wait in stats.queue_waits:
                wait_series.observe(wait)
            latency_series = self._m_latency.labels(scheme=label)
            for latency in stats.latencies:
                latency_series.observe(latency)
        return stats

    def _fast_forward(self, arrivals: Tuple[float, ...], index: int,
                      limit: int, instances: List[_Instance], warm: float,
                      cold: float, cold_extra: float, stats: ClusterStats,
                      recorder: Optional[TraceRecorder]) -> int:
        """Replay arrivals ``[index, limit)`` analytically.

        Preconditions (checked by the caller): no resilience state,
        every instance warm, and no ``cluster.request`` draw inside the
        window fails (the caller previews the injector).  A warm
        instance's ``busy_until`` always equals its ``last_used`` (both
        are its last finish time), and instances are exchangeable, so
        scheduling reduces to the classic multi-server recurrence
        ``finish_k = max(a_k, oldest) + warm`` over a min-heap of the
        pool's finish times — O(log n) per request, no pool scans, no
        reclaim list rebuilds.  The float arithmetic per request
        matches the scheduling loop operation-for-operation, so
        latencies, queue waits and trace records are byte-identical.

        Pool transitions that used to force a fall-back to event
        stepping are themselves analytic now:

        - **reclaim** — for an all-warm pool, expiry order is finish
          order, so reclaimed instances are exactly the heap-front
          entries with ``arrival - finish > keep_alive``;
        - **cold spawn** — the new instance is a deterministic warm-up
          frontier: it enters the heap at its cold finish time and is
          an ordinary warm instance from then on;
        - **queueing at capacity** — the earliest finish *is* the heap
          root.

        The steady-state inner loop below is untouched from the
        original warm-only fast path; transitions are handled one
        arrival at a time between runs of it, then the tight loop
        resumes on the same iterator.
        """
        config = self.config
        keep_alive = config.keep_alive_s
        max_instances = config.max_instances
        # A min-heap of finish times: the root is always the pool's
        # earliest-free (and longest-idle) instance.  A plain FIFO would
        # not do — the seed can hold cold-start finishes that exceed the
        # warm finishes computed here, so appends do not stay sorted.
        pool = [inst.busy_until for inst in instances]
        heapq.heapify(pool)
        size = len(pool)
        # Locals bound out of the loop: at a million iterations every
        # attribute lookup is measurable.  The pool size only changes
        # between runs of the tight loop, so the cold-spawn guard is
        # loop-invariant inside it.
        heapreplace = heapq.heapreplace
        heappush = heapq.heappush
        heappop = heapq.heappop
        queue_waits = stats.queue_waits
        latencies = stats.latencies
        remaining = arrivals[index:limit]
        arrival_iter = iter(remaining)
        pos = 0
        while True:
            span_starts: List[float] = []
            span_ends: List[float] = []
            event = None
            if size:
                start_append = span_starts.append
                end_append = span_ends.append
                can_spawn = size < max_instances
                for arrival in arrival_iter:
                    oldest = pool[0]
                    if arrival - oldest > keep_alive:
                        event = arrival
                        break  # an idle instance is reclaimed here
                    if can_spawn and oldest > arrival:
                        event = arrival
                        break  # the request spawns a cold instance
                    start = oldest if oldest > arrival else arrival
                    finish = start + warm
                    heapreplace(pool, finish)
                    start_append(start)
                    end_append(finish)
            served = len(span_starts)
            if served:
                window = remaining[pos:pos + served]
                # Queue waits and latencies derive from the spans;
                # map(sub, ...) performs the identical subtractions the
                # stepping path does, inside the interpreter's C loop.
                queue_waits.extend(map(operator.sub, span_starts, window))
                latencies.extend(map(operator.sub, span_ends, window))
                if recorder is not None:
                    # One homogeneous batch: the recorder resolves its
                    # accumulator buckets once and, under aggregate
                    # retention, only builds the records that survive
                    # the ring.  Flushing before each transition record
                    # keeps the global record order identical.
                    recorder.ingest_stream(zip(span_starts, span_ends),
                                           "cluster", Phase.EXEC, "serve")
                stats.warm_hits += served
                pos += served
            if event is None:
                if size:
                    break  # window exhausted
                event = next(arrival_iter, None)
                if event is None:
                    break
            # One pool transition: reclaim whatever expired, then serve
            # this arrival exactly the way the stepping loop would.
            arrival = event
            while size and arrival - pool[0] > keep_alive:
                heappop(pool)
                size -= 1
            if size and pool[0] <= arrival:
                # A warm instance is free after all (the break was a
                # reclaim of an even older one).
                start = arrival
                finish = start + warm
                heapreplace(pool, finish)
                stats.warm_hits += 1
                if recorder is not None:
                    recorder.record(start, finish, "cluster",
                                    Phase.EXEC, "serve")
            elif size < max_instances:
                # Cold spawn: the warm-up frontier joins the heap at
                # the cold finish time.
                start = max(arrival, 0.0)
                finish = start + cold
                heappush(pool, finish)
                size += 1
                stats.cold_starts += 1
                if recorder is not None:
                    boundary = start + cold_extra
                    recorder.record(start, boundary, "cluster",
                                    Phase.LOAD, "cold-start")
                    recorder.record(boundary, finish, "cluster",
                                    Phase.EXEC, "serve")
            else:
                # At capacity with nothing free: queue on the earliest.
                start = pool[0]
                finish = start + warm
                heapreplace(pool, finish)
                stats.warm_hits += 1
                if recorder is not None:
                    recorder.record(start, finish, "cluster",
                                    Phase.EXEC, "serve")
            queue_waits.append(start - arrival)
            latencies.append(finish - arrival)
            pos += 1
        # Materialize the pool back onto the instances.  Warm instances
        # are exchangeable (scheduling and reclaim depend only on their
        # time values), so the assignment order is irrelevant; spawns
        # and reclaims may have changed the pool size.
        if size != len(instances):
            instances[:] = [_Instance() for _ in range(size)]
        for inst, finish in zip(instances, pool):
            inst.busy_until = finish
            inst.last_used = finish
            inst.warm = True
        stats.fast_forwarded += pos
        return index + pos

    def _reclaim_idle(self, instances: List[_Instance], now: float) -> None:
        keep_alive = self.config.keep_alive_s
        # Breaker-open instances are held by the supervisor through
        # their cooldown (they must face a half-open probe, not be
        # silently replaced by a fresh cold spawn); without a policy
        # the flag is never set and the predicate is unchanged.
        instances[:] = [i for i in instances
                        if i.busy_until > now
                        or now - i.last_used <= keep_alive
                        or (i.breaker_open and i.breaker_until > now)]

    @staticmethod
    def _pick_instance(instances: List[_Instance],
                       now: float) -> Optional[_Instance]:
        """The warm instance free at ``now`` that has idled longest."""
        free = [i for i in instances if i.busy_until <= now and i.warm]
        if not free:
            return None
        return min(free, key=lambda i: i.last_used)

    @staticmethod
    def _pick_routable(instances: List[_Instance],
                       now: float) -> Optional[_Instance]:
        """Policy-aware pick: like :meth:`_pick_instance`, but the
        circuit breaker excludes open instances still in cooldown."""
        free = [i for i in instances
                if i.busy_until <= now and i.warm
                and (not i.breaker_open or i.breaker_until <= now)]
        if not free:
            return None
        return min(free, key=lambda i: i.last_used)
