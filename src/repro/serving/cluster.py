"""Autoscaling cluster simulator: cold starts under real request traffic.

Models the serverless/spot serving loop of the paper's introduction: a
pool of instances serves a request trace; a request landing on a warm,
idle instance runs at hot latency, while one that must spawn a fresh
instance pays the full cold start of the configured scheme.  Instances
are reclaimed after a keep-alive timeout, so sparse traffic keeps
re-triggering cold starts.

The per-request service times come from the deterministic simulation
(:class:`~repro.serving.server.InferenceServer`); the cluster layer adds
queueing, autoscaling and keep-alive on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.core.schemes import Scheme
from repro.serving.requests import RequestTrace
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultInjector, FaultPlan

__all__ = ["ClusterConfig", "ClusterStats", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster policy knobs."""

    scheme: Scheme = Scheme.BASELINE
    max_instances: int = 8
    keep_alive_s: float = 10.0     # idle instances reclaimed after this
    # Optional fault plan: instance crash/restart churn during the
    # replay (``cluster.request`` injection point).
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_instances <= 0:
            raise ValueError("need at least one instance")
        if self.keep_alive_s < 0:
            raise ValueError("keep-alive must be non-negative")


@dataclass
class _Instance:
    busy_until: float = 0.0
    last_used: float = 0.0
    warm: bool = False


@dataclass
class ClusterStats:
    """Outcome of one trace replay."""

    latencies: List[float] = field(default_factory=list)
    cold_starts: int = 0
    warm_hits: int = 0
    queue_waits: List[float] = field(default_factory=list)
    failed: int = 0   # requests explicitly failed (reroute budget spent)
    faults: FaultCounters = field(default_factory=FaultCounters)

    @property
    def completed(self) -> int:
        """Requests that finished successfully."""
        return len(self.latencies)

    @property
    def requests(self) -> int:
        """Total requests accounted for (completed + explicitly failed)."""
        return len(self.latencies) + self.failed

    @property
    def availability(self) -> float:
        """Fraction of requests that completed successfully."""
        if not self.requests:
            return 1.0
        return self.completed / self.requests

    @property
    def mean_latency(self) -> float:
        """Arithmetic mean of per-request latency.

        ``0.0`` when nothing completed (e.g. every request was
        explicitly failed by a fault plan) — a replay must always be
        reportable, crash-free, whatever the fault plan did.
        """
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """The q-quantile (0..1) of request latency, by nearest rank.

        Uses the standard nearest-rank definition (rank ``ceil(q * n)``,
        1-based), so ``percentile(0.5)`` of an odd-length sample is its
        true median and ``percentile(1.0)`` is the maximum.  ``0.0``
        when nothing completed, for the same reason as
        :attr:`mean_latency`.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def cold_start_fraction(self) -> float:
        """Share of requests that paid a cold start."""
        return self.cold_starts / self.requests if self.requests else 0.0


# Per-server service-time memo shared by every ClusterSimulator built on
# that server: replaying many traces (or many fault plans) against the
# same (scheme, model, batch) re-simulates the cold/hot serve exactly
# once per process instead of once per simulator.  Keyed weakly so a
# discarded server releases its entries.  Service times are always
# simulated fault-free (crashes are injected at the cluster layer), so
# sharing across configs with different fault plans is sound.
_SERVICE_TIMES: "WeakKeyDictionary[InferenceServer, Dict[Tuple, float]]" = \
    WeakKeyDictionary()


class ClusterSimulator:
    """Replays a request trace against an autoscaled instance pool."""

    def __init__(self, server: InferenceServer, config: ClusterConfig) -> None:
        self.server = server
        self.config = config
        try:
            self._service_times = _SERVICE_TIMES.setdefault(server, {})
        except TypeError:  # non-weakref-able server stand-in (tests)
            self._service_times = {}

    def _cold_time(self, model: str, batch: int) -> float:
        key = ("cold", self.config.scheme, model, batch)
        if key not in self._service_times:
            result = self.server.serve_cold(model, self.config.scheme, batch)
            self._service_times[key] = result.total_time
        return self._service_times[key]

    def _warm_time(self, model: str, batch: int) -> float:
        key = ("hot", model, batch)
        if key not in self._service_times:
            self._service_times[key] = \
                self.server.serve_hot(model, batch).total_time
        return self._service_times[key]

    def run(self, trace: RequestTrace) -> ClusterStats:
        """Replay ``trace`` and collect per-request statistics.

        With a fault plan configured, instances may crash mid-request
        (``cluster.request`` injection point): the request is rerouted
        to another instance (up to ``max_reroutes`` times before it is
        *explicitly failed*), and the crashed instance restarts cold --
        its PASK cache is gone, so the next request it serves pays the
        full cold start again.  Every request is therefore accounted
        for: ``stats.completed + stats.failed == len(trace)``.
        """
        stats = ClusterStats()
        injector: Optional[FaultInjector] = (
            self.config.faults.injector()
            if self.config.faults is not None else None)
        instances: List[_Instance] = []
        cold = self._cold_time(trace.model, trace.batch)
        warm = self._warm_time(trace.model, trace.batch)
        for arrival in trace.arrivals:
            now = arrival
            attempts = 0
            while True:
                self._reclaim_idle(instances, now)
                instance = self._pick_instance(instances, now)
                if instance is None:
                    if len(instances) < self.config.max_instances:
                        instance = _Instance()
                        instances.append(instance)
                    else:
                        # All instances busy at capacity: queue on the
                        # one that frees up first.
                        instance = min(instances, key=lambda i: i.busy_until)
                start = max(now, instance.busy_until)
                if attempts == 0:
                    stats.queue_waits.append(start - arrival)
                warm_attempt = instance.warm
                service = warm if warm_attempt else cold
                crash_at = (injector.crash_point(service)
                            if injector is not None else None)
                if crash_at is None:
                    if warm_attempt:
                        stats.warm_hits += 1
                    else:
                        stats.cold_starts += 1
                    finish = start + service
                    instance.busy_until = finish
                    instance.last_used = finish
                    instance.warm = True
                    stats.latencies.append(finish - arrival)
                    if injector is not None:
                        injector.counters.completed_requests += 1
                    break
                # The instance dies crash_at seconds into the request;
                # it restarts cold (empty PASK cache) after the restart
                # delay and re-enters the pool.
                injector.counters.crashes += 1
                crash_time = start + crash_at
                instance.busy_until = crash_time + \
                    self.config.faults.restart_delay_s
                instance.last_used = instance.busy_until
                instance.warm = False
                attempts += 1
                if attempts > self.config.faults.max_reroutes:
                    stats.failed += 1
                    injector.counters.failed_requests += 1
                    break
                # Reroute: the request re-enters scheduling at the time
                # the crash was detected.
                injector.counters.reroutes += 1
                now = crash_time
        if injector is not None:
            stats.faults = injector.counters
        return stats

    def _reclaim_idle(self, instances: List[_Instance], now: float) -> None:
        keep_alive = self.config.keep_alive_s
        instances[:] = [i for i in instances
                        if i.busy_until > now
                        or now - i.last_used <= keep_alive]

    @staticmethod
    def _pick_instance(instances: List[_Instance],
                       now: float) -> Optional[_Instance]:
        """The warm instance free at ``now`` that has idled longest."""
        free = [i for i in instances if i.busy_until <= now and i.warm]
        if not free:
            return None
        return min(free, key=lambda i: i.last_used)
