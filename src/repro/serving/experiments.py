"""Experiment runners: one function per figure/table of the paper.

Each runner returns plain data structures (dicts keyed by model/scheme)
that the benchmark harness prints and the integration tests assert
against.  An :class:`ExperimentSuite` memoizes serve results so that one
pytest/benchmark session never simulates the same (device, model, scheme,
batch) combination twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import ExecutionResult
from repro.core.schemes import Scheme
from repro.models import list_models
from repro.serving.cluster import ClusterConfig, ClusterSimulator, ClusterStats
from repro.serving.metrics import mean
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan
from repro.sim.trace import Phase

__all__ = ["ExperimentSuite", "DEFAULT_BATCHES", "CONV_MODELS",
           "TRANSFORMER_MODELS"]

DEFAULT_BATCHES = (1, 4, 16, 64, 128)
TRANSFORMER_MODELS = ("vit", "swin", "swin2")
CONV_MODELS = tuple(m for m in list_models() if m not in TRANSFORMER_MODELS)


class ExperimentSuite:
    """Runs and memoizes all experiments for one device."""

    def __init__(self, device: str = "MI100",
                 models: Optional[Sequence[str]] = None,
                 faults: Optional[FaultPlan] = None,
                 trace_retention: Optional[str] = None) -> None:
        self.device = device
        self.models = list(models) if models is not None else list_models()
        # Optional fault plan threaded through every serve; an all-zero
        # plan leaves every experiment byte-identical to no plan at all.
        self.faults = faults
        # Trace retention for cluster replays (None / "full" /
        # "aggregate"); aggregate metrics are identical across policies.
        self.trace_retention = trace_retention
        self._servers: Dict[str, InferenceServer] = {}
        self._cold: Dict[Tuple[str, str, Scheme, int], ExecutionResult] = {}
        self._hot: Dict[Tuple[str, str, int], ExecutionResult] = {}
        self._cluster: Dict[Tuple, ClusterStats] = {}

    # ------------------------------------------------------------------
    # Memoized serving
    # ------------------------------------------------------------------
    def server(self, device: Optional[str] = None) -> InferenceServer:
        """The (cached) inference server for ``device``."""
        device = device or self.device
        if device not in self._servers:
            self._servers[device] = InferenceServer(device)
        return self._servers[device]

    def cold(self, model: str, scheme: Scheme, batch: int = 1,
             device: Optional[str] = None) -> ExecutionResult:
        """Memoized cold run."""
        device = device or self.device
        key = (device, model, scheme, batch)
        if key not in self._cold:
            self._cold[key] = self.server(device).serve_cold(
                model, scheme, batch, faults=self.faults)
        return self._cold[key]

    def hot(self, model: str, batch: int = 1,
            device: Optional[str] = None) -> ExecutionResult:
        """Memoized hot (successive-iteration) run."""
        device = device or self.device
        key = (device, model, batch)
        if key not in self._hot:
            self._hot[key] = self.server(device).serve_hot(
                model, batch, faults=self.faults)
        return self._hot[key]

    def cluster_replay(self, model: str, scheme: Scheme,
                       rate_hz: float = 20.0, duration_s: float = 4.0,
                       seed: int = 0, instances: int = 4,
                       keep_alive_s: float = 0.5,
                       device: Optional[str] = None) -> ClusterStats:
        """Memoized Poisson-trace cluster replay.

        Uses the suite's fault plan and trace retention policy; repeated
        calls with the same knobs replay from the memo, mirroring
        :meth:`cold`/:meth:`hot` for the serving-scale experiments.
        """
        device = device or self.device
        key = (device, model, scheme, rate_hz, duration_s, seed,
               instances, keep_alive_s)
        if key not in self._cluster:
            trace = poisson_trace(model, rate_hz, duration_s, seed=seed)
            config = ClusterConfig(scheme=scheme, max_instances=instances,
                                   keep_alive_s=keep_alive_s,
                                   faults=self.faults,
                                   trace_retention=self.trace_retention)
            self._cluster[key] = ClusterSimulator(
                self.server(device), config).run(trace)
        return self._cluster[key]

    def inject_cold(self, device: str, model: str, scheme: Scheme,
                    batch: int, result: ExecutionResult) -> None:
        """Seed the cold-run memo with an externally computed result.

        This is the bridge from :mod:`repro.runner`: the parallel engine
        computes the grid out of process and injects the cells here, so
        every figure/table method replays from the memo without running
        a simulation.  Results are byte-identical either way (the
        determinism tests pin this).
        """
        self._cold[(device, model, scheme, batch)] = result

    def inject_hot(self, device: str, model: str, batch: int,
                   result: ExecutionResult) -> None:
        """Seed the hot-run memo (see :meth:`inject_cold`)."""
        self._hot[(device, model, batch)] = result

    def prewarm(self, jobs: int = 1, cache=None):
        """Fill the memo tables through the parallel engine.

        Runs the full experiment grid (headline schemes across the
        Table II batch sweep, the ablations, hot runs, and the Fig. 1(a)
        cells on the other devices) out of process and injects every
        cell, after which all figure/table methods replay from the memo.
        Returns the engine's :class:`~repro.runner.RunStats`.
        """
        from repro.runner.engine import prewarm_suite_tasks
        from repro.runner.grid import experiment_grid
        tasks = experiment_grid(device=self.device, models=self.models,
                                faults=self.faults)
        return prewarm_suite_tasks(self, tasks, jobs=jobs, cache=cache)

    def speedup(self, model: str, scheme: Scheme, batch: int = 1,
                device: Optional[str] = None) -> float:
        """Cold-start speedup of ``scheme`` over the baseline."""
        base = self.cold(model, Scheme.BASELINE, batch, device)
        run = self.cold(model, scheme, batch, device)
        return run.speedup_over(base)

    # ------------------------------------------------------------------
    # Fig. 1(a): cold/hot slowdowns per device
    # ------------------------------------------------------------------
    def fig1a(self, devices: Sequence[str] = ("MI100", "A100", "6900XT")
              ) -> Dict[str, Dict[str, float]]:
        """Cold-start slowdown (first / successive iteration) per device."""
        out: Dict[str, Dict[str, float]] = {}
        for device in devices:
            per_model = {}
            for model in self.models:
                cold = self.cold(model, Scheme.BASELINE, device=device)
                hot = self.hot(model, device=device)
                per_model[model] = cold.total_time / hot.total_time
            per_model["average"] = mean(
                v for k, v in per_model.items() if k != "average")
            out[device] = per_model
        return out

    # ------------------------------------------------------------------
    # Fig. 1(b): baseline cold-start breakdown by phase
    # ------------------------------------------------------------------
    def fig1b(self) -> Dict[str, Dict[str, float]]:
        """Per-model baseline breakdown into the four ordering phases."""
        out = {}
        for model in self.models:
            result = self.cold(model, Scheme.BASELINE)
            exclusive = result.trace.exclusive_fractions(
                [Phase.EXEC, Phase.LOAD, Phase.PARSE, Phase.ISSUE],
                total_time=result.total_time)
            parse = exclusive[Phase.PARSE]
            load = exclusive[Phase.LOAD]
            execution = exclusive[Phase.EXEC]
            issue = exclusive[Phase.ISSUE]
            others = max(0.0, 1.0 - parse - load - execution - issue)
            out[model] = {"model_parse": parse, "code_loading": load,
                          "kernel_issue": issue, "gpu_execution": execution,
                          "others": others}
        averages = {key: mean(row[key] for row in out.values())
                    for key in next(iter(out.values()))}
        out["average"] = averages
        return out

    # ------------------------------------------------------------------
    # Fig. 6(a): end-to-end cold-start speedups
    # ------------------------------------------------------------------
    def fig6a(self, schemes: Sequence[Scheme] = (Scheme.NNV12, Scheme.PASK,
                                                 Scheme.IDEAL)
              ) -> Dict[str, Dict[str, float]]:
        """Cold-start speedups over the baseline per scheme/model."""
        out: Dict[str, Dict[str, float]] = {}
        for scheme in schemes:
            per_model = {m: self.speedup(m, scheme) for m in self.models}
            per_model["average"] = mean(
                v for k, v in per_model.items() if k != "average")
            out[scheme.label] = per_model
        return out

    # ------------------------------------------------------------------
    # Fig. 6(b): GPU utilization during cold start
    # ------------------------------------------------------------------
    def fig6b(self, schemes: Sequence[Scheme] = (Scheme.NNV12, Scheme.PASK,
                                                 Scheme.IDEAL)
              ) -> Dict[str, Dict[str, float]]:
        """GPU-active fraction of the cold start per scheme/model."""
        out: Dict[str, Dict[str, float]] = {}
        for scheme in schemes:
            per_model = {m: self.cold(m, scheme).gpu_utilization
                         for m in self.models}
            per_model["average"] = mean(
                v for k, v in per_model.items() if k != "average")
            out[scheme.label] = per_model
        return out

    # ------------------------------------------------------------------
    # Table II: speedups vs inference batch size
    # ------------------------------------------------------------------
    def table2(self, batches: Sequence[int] = DEFAULT_BATCHES,
               schemes: Sequence[Scheme] = (Scheme.NNV12, Scheme.PASK,
                                            Scheme.IDEAL)
               ) -> Dict[str, Dict[int, float]]:
        """Average cold-start speedup per scheme at each batch size."""
        out: Dict[str, Dict[int, float]] = {}
        for scheme in schemes:
            out[scheme.label] = {
                batch: mean(self.speedup(m, scheme, batch)
                            for m in self.models)
                for batch in batches
            }
        return out

    # ------------------------------------------------------------------
    # Fig. 7: PaSK cold-start breakdown
    # ------------------------------------------------------------------
    def fig7(self) -> Dict[str, Dict[str, float]]:
        """PaSK time breakdown: compute / loading / overhead / others."""
        out = {m: self.cold(m, Scheme.PASK).breakdown() for m in self.models}
        out["average"] = {key: mean(row[key] for row in out.values())
                          for key in next(iter(out.values()))}
        return out

    # ------------------------------------------------------------------
    # Fig. 8: ablation (PaSK-I, PaSK-R normalized to PaSK)
    # ------------------------------------------------------------------
    def fig8(self) -> Dict[str, Dict[str, float]]:
        """Performance of the variants normalized to full PaSK (<= ~1)."""
        out: Dict[str, Dict[str, float]] = {}
        for scheme in (Scheme.PASK_I, Scheme.PASK_R):
            per_model = {}
            for model in self.models:
                pask = self.cold(model, Scheme.PASK)
                variant = self.cold(model, scheme)
                per_model[model] = pask.total_time / variant.total_time
            per_model["average"] = mean(
                v for k, v in per_model.items() if k != "average")
            out[scheme.label] = per_model
        return out

    # ------------------------------------------------------------------
    # Fig. 9: cache hit rate and lookups per query
    # ------------------------------------------------------------------
    def fig9(self) -> Dict[str, Dict[str, float]]:
        """Cache statistics on the convolution models (transformers have a
        single primitive operator and are omitted, as in the paper)."""
        out: Dict[str, Dict[str, float]] = {}
        conv_models = [m for m in self.models if m in CONV_MODELS]
        for model in conv_models:
            categorical = self.cold(model, Scheme.PASK).cache_stats
            naive = self.cold(model, Scheme.PASK_R).cache_stats
            out[model] = {
                "hit_rate": categorical.hit_rate,
                "lookups_categorical": categorical.lookups_per_query,
                "lookups_naive": naive.lookups_per_query,
            }
        out["average"] = {key: mean(row[key] for row in out.values())
                          for key in next(iter(out.values()))}
        return out
