"""The inference server: end-to-end cold and hot runs.

``InferenceServer`` owns the offline side (library, find-db, model
registry with per-policy lowered variants) and spins up a fresh simulated
runtime per request -- a cold start is literally a new runtime with no
loaded modules, matching the preemptive/serverless/edge scenarios of the
paper's introduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.results import ExecutionResult
from repro.core.schemes import Scheme, build_executor, program_code_objects
from repro.engine.program import Program
from repro.engine.registry import ModelRegistry
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.runtime import HipRuntime, RuntimeSnapshot
from repro.graph import Graph
from repro.primitive.blas import BlasLibrary
from repro.primitive.library import MIOpenLibrary
from repro.sim.core import Environment
from repro.sim.faults import (CheckpointFault, FaultError, FaultPlan,
                              RestoreFault)

__all__ = ["InferenceServer", "ServeResult", "serve_cold", "serve_hot"]

ServeResult = ExecutionResult


class InferenceServer:
    """Offline-prepared serving stack for a set of models on one device."""

    def __init__(self, device: Union[str, DeviceSpec] = "MI100",
                 upload_weights: bool = False) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.upload_weights = upload_weights
        self.library = MIOpenLibrary(self.device)
        self.blas = BlasLibrary(self.device)
        self.registry = ModelRegistry(self.library)
        self._graphs: Dict[str, Graph] = {}

    # ------------------------------------------------------------------
    # Offline: model registration
    # ------------------------------------------------------------------
    def register_model(self, graph: Graph) -> None:
        """Make a model graph available for serving under its name."""
        self._graphs[graph.name] = graph

    def _program_key(self, model: str, scheme: Scheme, batch: int) -> str:
        policy = "native" if scheme is Scheme.NNV12 else "default"
        return f"{model}@{policy}@b{batch}"

    def _lowered(self, model: str, scheme: Scheme, batch: int) -> Program:
        """The lowered program for (model, scheme policy, batch); compiles
        and caches it in the registry on first use."""
        key = self._program_key(model, scheme, batch)
        if key not in self.registry:
            graph = self._resolve_graph(model)
            self.registry.compile_and_register(
                graph, key=key, options=scheme.lowering_options(batch))
        program = self.registry.load(key)
        if self.upload_weights:
            program.metadata["upload_weights"] = True
        return program

    def _resolve_graph(self, model: str) -> Graph:
        if model in self._graphs:
            return self._graphs[model]
        # Fall back to the built-in model zoo.
        from repro.models import build_model
        graph = build_model(model)
        self._graphs[model] = graph
        return graph

    # ------------------------------------------------------------------
    # Online: serving
    # ------------------------------------------------------------------
    def serve_cold(self, model: str, scheme: Scheme = Scheme.BASELINE,
                   batch: int = 1,
                   faults: Optional[FaultPlan] = None,
                   spans=None, metrics=None) -> ExecutionResult:
        """Serve one request on a fresh instance (no loaded kernels).

        With a ``faults`` plan, the run is subject to deterministic fault
        injection; a request whose faults exhaust every mitigation is
        returned *explicitly failed* (``result.failed``) rather than
        raising -- no request is ever silently lost.

        ``spans`` (a :class:`repro.obs.SpanRecorder`) and ``metrics``
        (a :class:`repro.obs.MetricsRegistry`) opt into telemetry: the
        run is wrapped in a request-lifecycle span and every runtime /
        middleware activity mirrors into causal spans.  Both default to
        off, which costs nothing and changes nothing.
        """
        program = self._lowered(model, scheme, batch)
        env = Environment()
        injector = faults.injector() if faults is not None else None
        if injector is not None and metrics is not None:
            injector.bind_metrics(metrics)
        runtime = HipRuntime(env, self.device, faults=injector,
                             spans=spans, metrics=metrics)
        executor = build_executor(scheme)

        outcome: Dict[str, object] = {}
        metadata = {"device": self.device.name, "instructions": len(program)}
        failed = False

        def driver():
            with runtime.spans.request(f"serve:{model}", model=model,
                                       scheme=scheme.label, batch=batch):
                stats = yield from executor(env, runtime, self.library,
                                            self.blas, program)
            outcome.update(stats or {})

        process = env.process(driver(), name=f"serve-{model}")
        try:
            env.run(until=process)
        except FaultError as error:
            failed = True
            metadata["error"] = str(error)
        if injector is not None:
            if failed:
                injector.counters.failed_requests += 1
            else:
                injector.counters.completed_requests += 1
        return ExecutionResult(
            scheme=scheme.label, model=model, batch=batch,
            total_time=env.now, trace=runtime.trace,
            loads=runtime.load_count, loaded_bytes=runtime.loaded_bytes,
            milestone=outcome.get("milestone"),
            cache_stats=outcome.get("cache_stats"),
            reused_layers=outcome.get("reused_layers", 0),
            skipped_loads=outcome.get("skipped_loads", 0),
            faults=injector.counters if injector is not None else None,
            failed=failed,
            metadata=metadata,
        )

    def serve_session(self, model: str, scheme: Scheme = Scheme.PASK,
                      n_requests: int = 3, interval_s: float = 0.05,
                      interval_preload: bool = True,
                      batch: int = 1,
                      faults: Optional[FaultPlan] = None,
                      spans=None, metrics=None
                      ) -> List[ExecutionResult]:
        """Serve consecutive requests on one warm instance (Sec. VI).

        The runtime persists across requests, so every code object loaded
        by request *i* benefits request *i+1*.  With ``interval_preload``
        the idle gap between requests is used to load the desired
        solutions PASK skipped, so later requests run their optimal
        kernels -- the paper's inter-request loading discussion.

        With ``spans``, each request becomes one request-lifecycle span
        in the shared recorder (request 0 cold, the rest warm), which is
        the input per-request cold-start attribution works from.
        """
        if n_requests < 1:
            raise ValueError("need at least one request")
        if interval_s < 0:
            raise ValueError("interval must be non-negative")
        program = self._lowered(model, scheme, batch)
        env = Environment()
        injector = faults.injector() if faults is not None else None
        if injector is not None and metrics is not None:
            injector.bind_metrics(metrics)
        runtime = HipRuntime(env, self.device, faults=injector,
                             spans=spans, metrics=metrics)
        executor = build_executor(scheme)
        results: List[ExecutionResult] = []

        def session():
            from repro.core.preloader import preload_during_interval
            from repro.sim.trace import TraceRecorder
            for request in range(n_requests):
                trace = TraceRecorder()
                runtime.trace = trace
                runtime.stream.trace = trace
                # Each request gets a fresh recorder; re-attach the span
                # observer so its activities keep mirroring (no-op when
                # telemetry is off).
                if spans is not None:
                    spans.bind(trace)
                loads_before = runtime.load_count
                start = self.env_now(env)
                try:
                    with runtime.spans.request(f"request-{request}",
                                               model=model, request=request,
                                               scheme=scheme.label):
                        stats = yield from executor(env, runtime,
                                                    self.library,
                                                    self.blas, program)
                except FaultError as error:
                    # The instance died mid-request: record the request
                    # as explicitly failed and end the session (the
                    # cluster layer models the subsequent restart).
                    if injector is not None:
                        injector.counters.failed_requests += 1
                    results.append(ExecutionResult(
                        scheme=scheme.label, model=model, batch=batch,
                        total_time=env.now - start, trace=trace,
                        loads=runtime.load_count - loads_before,
                        loaded_bytes=runtime.loaded_bytes,
                        faults=injector.counters if injector else None,
                        failed=True,
                        metadata={"request": request,
                                  "device": self.device.name,
                                  "error": str(error)},
                    ))
                    return
                stats = stats or {}
                if injector is not None:
                    injector.counters.completed_requests += 1
                results.append(ExecutionResult(
                    scheme=scheme.label, model=model, batch=batch,
                    total_time=env.now - start, trace=trace,
                    loads=runtime.load_count - loads_before,
                    loaded_bytes=runtime.loaded_bytes,
                    milestone=stats.get("milestone"),
                    cache_stats=stats.get("cache_stats"),
                    reused_layers=stats.get("reused_layers", 0),
                    skipped_loads=stats.get("skipped_loads", 0),
                    faults=injector.counters if injector else None,
                    metadata={"request": request,
                              "device": self.device.name},
                ))
                if request == n_requests - 1:
                    break
                deadline = env.now + interval_s
                if interval_preload:
                    pending = stats.get("skipped_desired", [])
                    yield from preload_during_interval(env, runtime,
                                                       pending, deadline)
                remaining = deadline - env.now
                if remaining > 0:
                    yield env.timeout(remaining)

        process = env.process(session(), name=f"session-{model}")
        env.run(until=process)
        return results

    @staticmethod
    def env_now(env: Environment) -> float:
        """Current simulated time (hook point for tests)."""
        return env.now

    # ------------------------------------------------------------------
    # Warm-state checkpoint / restore serving
    # ------------------------------------------------------------------
    def capture_snapshot(self, model: str, scheme: Scheme = Scheme.PASK,
                         batch: int = 1,
                         faults: Optional[FaultPlan] = None,
                         spans=None, metrics=None):
        """Serve one cold request, then checkpoint the warm runtime.

        Returns ``(result, snapshot)``.  ``result.metadata`` carries the
        checkpoint write time under ``checkpoint_s``.  When the cold
        serve itself fails on injected faults, the result is explicitly
        failed and the snapshot is ``None``.
        """
        program = self._lowered(model, scheme, batch)
        env = Environment()
        injector = faults.injector() if faults is not None else None
        if injector is not None and metrics is not None:
            injector.bind_metrics(metrics)
        runtime = HipRuntime(env, self.device, faults=injector,
                             spans=spans, metrics=metrics)
        executor = build_executor(scheme)

        outcome: Dict[str, object] = {}
        metadata = {"device": self.device.name, "instructions": len(program)}
        failed = False

        def driver():
            with runtime.spans.request(f"capture:{model}", model=model,
                                       scheme=scheme.label, batch=batch):
                stats = yield from executor(env, runtime, self.library,
                                            self.blas, program)
            outcome.update(stats or {})
            served_at = env.now
            snapshot = yield from runtime.snapshot()
            outcome["snapshot"] = snapshot
            outcome["checkpoint_s"] = env.now - served_at

        process = env.process(driver(), name=f"capture-{model}")
        try:
            env.run(until=process)
        except FaultError as error:
            failed = True
            metadata["error"] = str(error)
        if injector is not None:
            if failed:
                injector.counters.failed_requests += 1
            else:
                injector.counters.completed_requests += 1
        if "checkpoint_s" in outcome:
            metadata["checkpoint_s"] = outcome["checkpoint_s"]
        result = ExecutionResult(
            scheme=scheme.label, model=model, batch=batch,
            total_time=env.now, trace=runtime.trace,
            loads=runtime.load_count, loaded_bytes=runtime.loaded_bytes,
            milestone=outcome.get("milestone"),
            cache_stats=outcome.get("cache_stats"),
            reused_layers=outcome.get("reused_layers", 0),
            skipped_loads=outcome.get("skipped_loads", 0),
            faults=injector.counters if injector is not None else None,
            failed=failed,
            metadata=metadata,
        )
        return result, outcome.get("snapshot")

    def serve_restored(self, model: str, snapshot: RuntimeSnapshot,
                       scheme: Scheme = Scheme.PASK, batch: int = 1,
                       faults: Optional[FaultPlan] = None,
                       spans=None, metrics=None) -> ExecutionResult:
        """Serve one request on a fresh instance primed from a checkpoint.

        The restart path of the resilience layer: instead of paying the
        full cold start, the instance restores ``snapshot`` (billing only
        the missing-module delta) and serves with those modules already
        resident.  A failed restore (corrupted checkpoint, injected
        ``restore.load`` fault) falls back to the plain cold path;
        ``result.metadata["restore_failed"]`` records why.
        """
        program = self._lowered(model, scheme, batch)
        env = Environment()
        injector = faults.injector() if faults is not None else None
        if injector is not None and metrics is not None:
            injector.bind_metrics(metrics)
        runtime = HipRuntime(env, self.device, faults=injector,
                             spans=spans, metrics=metrics)
        executor = build_executor(scheme)

        outcome: Dict[str, object] = {}
        metadata = {"device": self.device.name, "instructions": len(program)}
        failed = False

        def driver():
            with runtime.spans.request(f"restore:{model}", model=model,
                                       scheme=scheme.label, batch=batch):
                try:
                    restored = yield from runtime.restore(snapshot)
                    metadata["restored_modules"] = restored
                    metadata["restored_bytes"] = runtime.restored_bytes
                except (CheckpointFault, RestoreFault) as error:
                    # Fall back to a full cold start: the restore time
                    # already spent is sunk cost, nothing is resident.
                    metadata["restore_failed"] = str(error)
                stats = yield from executor(env, runtime, self.library,
                                            self.blas, program)
            outcome.update(stats or {})

        process = env.process(driver(), name=f"restore-{model}")
        try:
            env.run(until=process)
        except FaultError as error:
            failed = True
            metadata["error"] = str(error)
        if injector is not None:
            if failed:
                injector.counters.failed_requests += 1
            else:
                injector.counters.completed_requests += 1
        metadata["restored_hits"] = outcome.get("restored_hits", 0)
        return ExecutionResult(
            scheme=scheme.label, model=model, batch=batch,
            total_time=env.now, trace=runtime.trace,
            loads=runtime.load_count, loaded_bytes=runtime.loaded_bytes,
            milestone=outcome.get("milestone"),
            cache_stats=outcome.get("cache_stats"),
            reused_layers=outcome.get("reused_layers", 0),
            skipped_loads=outcome.get("skipped_loads", 0),
            faults=injector.counters if injector is not None else None,
            failed=failed,
            metadata=metadata,
        )

    def serve_hot(self, model: str, batch: int = 1,
                  faults: Optional[FaultPlan] = None,
                  spans=None, metrics=None) -> ExecutionResult:
        """A successive-iteration run: program parsed, kernels resident.

        This is the denominator of Fig. 1(a)'s cold/hot slowdowns.
        """
        program = self._lowered(model, Scheme.BASELINE, batch)
        env = Environment()
        injector = faults.injector() if faults is not None else None
        if injector is not None and metrics is not None:
            injector.bind_metrics(metrics)
        runtime = HipRuntime(env, self.device, faults=injector,
                             spans=spans, metrics=metrics)
        runtime.preload(program_code_objects(program, self.library, self.blas))

        def driver():
            from repro.core.schemes import _issue_instruction
            bundle = program.engine_bundle
            with runtime.spans.request(f"hot:{model}", model=model,
                                       scheme="Hot", batch=batch):
                for instr in program.instructions:
                    yield from _issue_instruction(env, runtime, self.library,
                                                  self.blas, instr,
                                                  actor="host", lazy=True,
                                                  engine_bundle=bundle)
                yield from runtime.synchronize()

        metadata = {"device": self.device.name, "instructions": len(program)}
        failed = False
        process = env.process(driver(), name=f"hot-{model}")
        try:
            env.run(until=process)
        except FaultError as error:
            failed = True
            metadata["error"] = str(error)
        if injector is not None:
            if failed:
                injector.counters.failed_requests += 1
            else:
                injector.counters.completed_requests += 1
        return ExecutionResult(
            scheme="Hot", model=model, batch=batch, total_time=env.now,
            trace=runtime.trace, loads=runtime.load_count,
            loaded_bytes=runtime.loaded_bytes,
            faults=injector.counters if injector is not None else None,
            failed=failed,
            metadata=metadata,
        )


def serve_cold(model: str, scheme: Scheme = Scheme.BASELINE, batch: int = 1,
               device: Union[str, DeviceSpec] = "MI100") -> ExecutionResult:
    """One-shot convenience wrapper around :class:`InferenceServer`."""
    return InferenceServer(device).serve_cold(model, scheme, batch)


def serve_hot(model: str, batch: int = 1,
              device: Union[str, DeviceSpec] = "MI100") -> ExecutionResult:
    """One-shot hot (successive-iteration) run."""
    return InferenceServer(device).serve_hot(model, batch)
