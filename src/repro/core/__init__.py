"""PASK: proactive and selective kernel loading middleware.

The paper's contribution, built on the substrates:

- :mod:`repro.core.cache` -- the categorical solution cache (Sec. III-C)
  and the naive exhaustive cache used by the PaSK-R ablation.
- :mod:`repro.core.milestone` -- the milestone-layer tracker (Sec. III-A).
- :mod:`repro.core.middleware` -- proactively interleaved execution with
  parse / load / issue host threads and Algorithm 1 selective reuse
  (Sec. III-A/B).
- :mod:`repro.core.schemes` -- the six evaluated serving schemes
  (Baseline, NNV12, Ideal, PaSK, PaSK-I, PaSK-R) behind one executor
  interface.
"""

from repro.core.cache import (
    CacheStats,
    CategoricalSolutionCache,
    LoadedInstance,
    NaiveSolutionCache,
)
from repro.core.milestone import MilestoneTracker
from repro.core.results import ExecutionResult
from repro.core.schemes import Scheme, build_executor
from repro.core.middleware import PaskConfig, PaskMiddleware

__all__ = [
    "CacheStats",
    "CategoricalSolutionCache",
    "ExecutionResult",
    "LoadedInstance",
    "MilestoneTracker",
    "NaiveSolutionCache",
    "PaskConfig",
    "PaskMiddleware",
    "Scheme",
    "build_executor",
]
