"""Solution caches: categorical (PASK) and naive (PaSK-R ablation).

The categorical cache (Sec. III-C) organizes loaded solution instances in
per-pattern MRU lists.  ``GETSUBSOLUTION`` walks only the list matching
the desired solution's pattern, most-recently-used first, and stops at the
first applicable instance -- minimizing the number of expensive
``IsApplicable`` evaluations.  The naive cache exhaustively checks every
cached instance and picks the best one, which is what makes PaSK-R slow.

Cache queries are *pure* with respect to simulated time: they return the
number of lookups performed and their total check cost; the caller (the
middleware) bills that time on the simulation clock and records it as
PASK overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.primitive.problem import Problem
from repro.primitive.solution import Solution
from repro.primitive.patterns import SolutionPattern

__all__ = [
    "LoadedInstance",
    "QueryResult",
    "CacheStats",
    "CategoricalSolutionCache",
    "NaiveSolutionCache",
]


@dataclass(frozen=True)
class LoadedInstance:
    """One loaded solution binary: the solver plus the problem it was
    tuned (and compiled) for."""

    solution: Solution
    tuned_for: Problem

    @property
    def key(self) -> str:
        """Identity of the underlying code object."""
        return self.solution.code_object_for(self.tuned_for).name

    def can_serve(self, problem: Problem) -> bool:
        """Whether this binary can execute ``problem`` (reuse check)."""
        return self.solution.tuning_compatible(self.tuned_for, problem)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one substitute-solution query."""

    instance: Optional[LoadedInstance]
    lookups: int
    check_cost_s: float

    @property
    def hit(self) -> bool:
        """Whether a reusable instance was found."""
        return self.instance is not None


@dataclass
class CacheStats:
    """Aggregate counters for Fig. 9."""

    queries: int = 0
    hits: int = 0
    total_lookups: int = 0
    total_check_cost_s: float = 0.0
    insertions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries that found a reusable instance."""
        return self.hits / self.queries if self.queries else 0.0

    @property
    def lookups_per_query(self) -> float:
        """Average IsApplicable evaluations per query (Fig. 9(b))."""
        return self.total_lookups / self.queries if self.queries else 0.0

    def observe(self, result: QueryResult) -> None:
        """Fold one query outcome into the counters."""
        self.queries += 1
        self.hits += int(result.hit)
        self.total_lookups += result.lookups
        self.total_check_cost_s += result.check_cost_s


_Filter = Callable[[LoadedInstance], bool]


class CategoricalSolutionCache:
    """Per-pattern MRU lists of loaded solution instances.

    ``mru=False`` disables the recency ordering (entries keep insertion
    order and hits do not move to the head) -- an ablation knob for the
    paper's claim that neighbouring layers have similar problems, so
    recently used solutions are the best candidates to check first.
    """

    def __init__(self, mru: bool = True) -> None:
        self.mru = mru
        self._lists: Dict[SolutionPattern, List[LoadedInstance]] = {}
        self._keys: set = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._lists.values())

    def __contains__(self, instance: LoadedInstance) -> bool:
        return instance.key in self._keys

    def entries(self, pattern: Optional[SolutionPattern] = None
                ) -> List[LoadedInstance]:
        """Cached instances, MRU first (one pattern or all)."""
        if pattern is not None:
            return list(self._lists.get(pattern, []))
        return [entry for entries in self._lists.values() for entry in entries]

    def insert(self, instance: LoadedInstance) -> None:
        """Record a freshly loaded instance at its pattern list's head."""
        if instance.key in self._keys:
            self._touch(instance)
            return
        entries = self._lists.setdefault(instance.solution.pattern, [])
        if self.mru:
            entries.insert(0, instance)
        else:
            entries.append(instance)
        self._keys.add(instance.key)
        self.stats.insertions += 1

    def _touch(self, instance: LoadedInstance) -> None:
        if not self.mru:
            return
        entries = self._lists.get(instance.solution.pattern, [])
        for position, entry in enumerate(entries):
            if entry.key == instance.key:
                entries.insert(0, entries.pop(position))
                return

    def get_sub_solution(self, desired: Solution, problem: Problem,
                         extra_filter: Optional[_Filter] = None) -> QueryResult:
        """GETSUBSOLUTION (Algorithm 1): first applicable same-pattern
        instance in MRU order.

        ``extra_filter`` lets the middleware reject candidates that would
        need additional absent code objects (layout casts).  A failed
        query returns immediately without probing other patterns.
        """
        entries = self._lists.get(desired.pattern, [])
        lookups = 0
        cost = 0.0
        found: Optional[LoadedInstance] = None
        for entry in entries:
            lookups += 1
            cost += entry.solution.check_cost_s
            if entry.can_serve(problem) and (extra_filter is None
                                             or extra_filter(entry)):
                found = entry
                break
        result = QueryResult(found, lookups, cost)
        self.stats.observe(result)
        if found is not None:
            self._touch(found)
        return result


class NaiveSolutionCache:
    """Flat cache without categorical organization (PaSK-R).

    Queries walk the whole cache in insertion order -- no per-pattern
    lists and no recency ordering -- and stop at the first applicable
    instance.  Because candidates from every pattern are interleaved and
    stale entries never sink, it performs more ``IsApplicable``
    evaluations per query than the categorical cache (Fig. 9(b)).
    """

    def __init__(self) -> None:
        self._entries: List[LoadedInstance] = []
        self._keys: set = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, instance: LoadedInstance) -> bool:
        return instance.key in self._keys

    def entries(self) -> List[LoadedInstance]:
        """All cached instances (insertion order)."""
        return list(self._entries)

    def insert(self, instance: LoadedInstance) -> None:
        """Record a freshly loaded instance."""
        if instance.key in self._keys:
            return
        self._entries.append(instance)
        self._keys.add(instance.key)
        self.stats.insertions += 1

    def get_sub_solution(self, desired: Solution, problem: Problem,
                         extra_filter: Optional[_Filter] = None) -> QueryResult:
        """First applicable substitute in insertion order."""
        lookups = 0
        cost = 0.0
        found: Optional[LoadedInstance] = None
        for entry in self._entries:
            lookups += 1
            cost += entry.solution.check_cost_s
            if entry.can_serve(problem) and (extra_filter is None
                                             or extra_filter(entry)):
                found = entry
                break
        result = QueryResult(found, lookups, cost)
        self.stats.observe(result)
        return result
