"""Inter-request interval preloading (Sec. VI "Loading desired solutions").

PASK selectively skips loading the originally desired solutions; the idle
interval between two consecutive requests on the same instance is long
enough to load them in the background.  On the next request those
binaries are resident, so the layers run their *optimal* solutions with
no loading and no reuse derating.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.gpu.loader import load_time
from repro.gpu.runtime import HipRuntime
from repro.primitive.problem import Problem
from repro.primitive.solution import Solution
from repro.sim.core import Environment
from repro.sim.faults import LoadFault

__all__ = ["preload_during_interval"]


def preload_during_interval(env: Environment, runtime: HipRuntime,
                            pending: Iterable[Tuple[Solution, Problem]],
                            deadline: float):
    """Load skipped solutions until ``deadline`` (generator).

    Loads are only started if they can finish before the deadline (a new
    request must never wait on background loading).  A load that faults
    out (``repro.sim.faults``) is abandoned -- the next request falls
    back to the reactive path for that solution, it never kills the
    session.  Returns the number of code objects loaded.
    """
    loaded = 0
    for solution, problem in pending:
        code_objects = ((solution.code_object_for(problem),)
                        + solution.transform_code_objects(problem))
        for code_object in code_objects:
            if runtime.is_loaded(code_object.name):
                continue
            if env.now + load_time(code_object, runtime.device) > deadline:
                return loaded
            try:
                yield from runtime.module_load(code_object,
                                               actor="interval-preloader")
            except LoadFault:
                if runtime.faults is not None:
                    runtime.faults.counters.fallbacks += 1
                continue
            loaded += 1
    return loaded
