"""Milestone-layer tracking (Sec. III-A).

The milestone is the layer *m* at which (a) all *n* layers have been
parsed and (b) every layer up to and including *m* has finished executing
on the GPU.  Before *m* PASK unconditionally loads missing solutions (the
loader is the bottleneck and the loads double as cache seeds); after *m*
it reuses selectively.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MilestoneTracker"]


class MilestoneTracker:
    """Detects the milestone layer from pipeline progress signals."""

    def __init__(self, total_layers: int) -> None:
        if total_layers <= 0:
            raise ValueError(f"need at least one layer, got {total_layers}")
        self.total_layers = total_layers
        self.parsed = 0
        self.executed_through = -1        # highest fully executed index
        self._milestone: Optional[int] = None

    @property
    def parse_done(self) -> bool:
        """Whether all layers have been parsed."""
        return self.parsed >= self.total_layers

    @property
    def reached(self) -> bool:
        """Whether the milestone has been passed."""
        return self._milestone is not None

    @property
    def milestone(self) -> Optional[int]:
        """The milestone layer index (None until reached)."""
        return self._milestone

    def record_parsed(self) -> None:
        """One more layer parsed."""
        if self.parsed >= self.total_layers:
            raise ValueError("parsed more layers than the program has")
        self.parsed += 1

    def record_executed(self, index: int) -> None:
        """Layer ``index`` finished executing (indices may arrive in order
        or be skipped for no-op layers)."""
        self.executed_through = max(self.executed_through, index)

    def check(self, next_index: int, gpu_idle: bool) -> bool:
        """Evaluate the milestone condition before handling ``next_index``.

        Returns True (and latches) once all layers are parsed and the
        pipeline has drained up to the previous layer.  The layer the
        loader just forwarded (``next_index - 1``) is issued concurrently
        at the same simulated instant, so the drain condition is checked
        against ``next_index - 2``: kernel execution is microseconds
        while loads are milliseconds, so by the time the loader finishes
        layer *i*'s load, layer *i-1* has long completed.
        """
        if self._milestone is not None:
            return True
        if (self.parse_done and gpu_idle
                and self.executed_through >= next_index - 2):
            self._milestone = max(0, next_index - 1)
            return True
        return False
