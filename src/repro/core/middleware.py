"""PASK's proactively interleaved execution (Sec. III-A, III-B, III-D).

Three host threads -- parser, loader, issuer -- run as simulation
processes connected by SPSC channels, exactly as in the paper's
implementation.  The loader applies Algorithm 1 after the milestone:
use the desired solution if its binary is resident, otherwise query the
solution cache for a reusable instance, and only load from scratch when
no substitute exists.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.tensors import DataType

from repro.core.cache import (
    CategoricalSolutionCache,
    LoadedInstance,
    NaiveSolutionCache,
    QueryResult,
)
from repro.primitive.problem import PrimitiveKind
from repro.core.milestone import MilestoneTracker
from repro.engine.instruction import Instruction, InstrKind
from repro.engine.program import Program
from repro.gpu.runtime import HipRuntime
from repro.primitive.blas import BlasLibrary
from repro.primitive.library import MIOpenLibrary
from repro.primitive.perf_model import kernel_time
from repro.sim.channel import Channel, ChannelClosed, ChannelClosedError
from repro.sim.core import Environment
from repro.sim.faults import LoadFault
from repro.sim.trace import Phase

__all__ = ["PaskConfig", "PaskMiddleware", "PLAN_DESIRED", "PLAN_REUSE",
           "PLAN_FALLBACK"]

PLAN_DESIRED = "desired"
PLAN_REUSE = "reuse"
PLAN_ENGINE = "engine"
PLAN_BLAS = "blas"
PLAN_NOOP = "noop"
# The proactive loader gave up on this layer (load fault after retries,
# or an injected stall exceeded the load timeout); the issuer executes
# it through the reactive lazy launch path instead.
PLAN_FALLBACK = "fallback"

_ENGINE_KERNEL_EFFICIENCY = 0.60
_CACHE_OP_OVERHEAD_S = 2e-6


def _as_fp32(problem):
    """The same problem computed in full precision."""
    return dataclasses.replace(problem, dtype=DataType.FP32)


@dataclass(frozen=True)
class PaskConfig:
    """Feature switches distinguishing PaSK from its ablations.

    The last two flags implement the Sec. VI extensions: ``manage_blas``
    applies PASK's proactive loading and reuse to the BLAS library's GEMM
    kernels ("trivial to extend ... if similar modifications are applied
    to hipBLAS"), and ``precision_fallback`` lets a low-precision layer
    run on an already-loaded high-precision binary instead of loading the
    absent low-precision one.
    """

    reuse_enabled: bool = True       # False => PaSK-I
    categorical_cache: bool = True   # False => naive exhaustive cache
    # The parser races ahead of the loader by design (the milestone logic
    # depends on it), so the parse->load channel is unbounded by default.
    load_channel_capacity: Optional[int] = None
    manage_blas: bool = False        # Sec. VI: extend PASK to hipBLAS
    precision_fallback: bool = False  # Sec. VI: mixed-precision reuse
    # Ablation knobs (not paper variants):
    cache_mru: bool = True            # recency-ordered categorical lists
    reuse_before_milestone: bool = False  # skip the milestone gate


@dataclass
class _Shared:
    """State shared between the three threads."""

    reused_layers: int = 0
    skipped_loads: int = 0
    # Layers whose desired binary was already resident because a warm-
    # state restore re-materialized it (no load, no cache query needed).
    restored_hits: int = 0
    issue_errors: List[BaseException] = field(default_factory=list)
    # Desired solutions whose loads were skipped by reuse: candidates for
    # loading in the interval between requests (Sec. VI).
    skipped_desired: List[Tuple[Any, Any]] = field(default_factory=list)


class PaskMiddleware:
    """The PASK middleware bound to one runtime and one program run."""

    def __init__(self, env: Environment, runtime: HipRuntime,
                 library: MIOpenLibrary, blas: BlasLibrary,
                 config: Optional[PaskConfig] = None,
                 cache=None) -> None:
        self.env = env
        self.runtime = runtime
        self.library = library
        self.blas = blas
        self.config = config or PaskConfig()
        # The cache persists for the life of the middleware process; pass
        # one in to share it across consecutive requests/models.
        if cache is not None:
            self.cache = cache
        else:
            self.cache = (CategoricalSolutionCache(mru=self.config.cache_mru)
                          if self.config.categorical_cache
                          else NaiveSolutionCache())
        self.tracker: Optional[MilestoneTracker] = None
        self.shared = _Shared()
        self._engine_bundle = None
        # Telemetry rides on the runtime's handles (no-op when off).
        metrics = getattr(runtime, "metrics", None)
        self.metrics = metrics
        if metrics is not None:
            self._m_checks = metrics.counter(
                "pask_check_total", "Solution-cache checks by outcome")
            self._m_queue_depth = metrics.gauge(
                "pask_preload_queue_depth",
                "Instructions waiting in the parse->load channel")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, program: Program):
        """Run ``program`` (generator; drive inside a process).

        Returns a dict of run statistics once the last kernel completes.
        """
        env = self.env
        self.tracker = MilestoneTracker(len(program))
        self._engine_bundle = program.engine_bundle
        parse_to_load = Channel(env, self.config.load_channel_capacity,
                                name="parse->load")
        load_to_issue = Channel(env, None, name="load->issue")

        parser = env.process(self._parser(program, parse_to_load), "pask-parser")
        loader = env.process(self._loader(parse_to_load, load_to_issue),
                             "pask-loader")
        issuer = env.process(self._issuer(load_to_issue), "pask-issuer")
        yield env.all_of([parser, loader, issuer])
        yield from self.runtime.synchronize()
        if self.shared.issue_errors:
            raise self.shared.issue_errors[0]
        return {
            "milestone": self.tracker.milestone,
            "reused_layers": self.shared.reused_layers,
            "skipped_loads": self.shared.skipped_loads,
            "restored_hits": self.shared.restored_hits,
            "cache_stats": self.cache.stats,
            "skipped_desired": list(self.shared.skipped_desired),
        }

    # ------------------------------------------------------------------
    # Parser thread
    # ------------------------------------------------------------------
    def _parser(self, program: Program, out: Channel):
        for instr in program.instructions:
            start = self.env.now
            yield self.env.timeout(instr.parse_cost_s)
            self.runtime.trace.record(start, self.env.now, "parser",
                                      Phase.PARSE, instr.name)
            self.tracker.record_parsed()
            try:
                yield out.put(instr)
            except ChannelClosedError:
                # Downstream crashed and closed the channel; stop parsing.
                return
        out.close()

    # ------------------------------------------------------------------
    # Loader thread
    # ------------------------------------------------------------------
    def _loader(self, inbox: Channel, out: Channel):
        try:
            while True:
                instr = yield inbox.get()
                if instr is ChannelClosed:
                    return
                if self.metrics is not None:
                    self._m_queue_depth.set(len(inbox))
                fallback = yield from self._loader_stall(instr)
                if fallback:
                    plan = (instr, PLAN_FALLBACK, None)
                else:
                    plan = yield from self._plan_instruction(instr)
                spans = self.runtime.spans
                if spans.enabled:
                    spans.event(f"plan:{instr.name}", self.env.now,
                                actor="loader", plan=plan[1])
                yield out.put(plan)
        finally:
            # Close unconditionally so a crashed loader never leaves the
            # issuer parked on a pending get.
            out.close()

    def _loader_stall(self, instr: Instruction):
        """Injected loader-thread stall (``pask.loader``); returns True
        when the stall exceeds the load timeout and the layer must take
        the reactive fallback path."""
        faults = self.runtime.faults
        if faults is None:
            return False
        stall = faults.loader_stall()
        if stall <= 0:
            return False
        timeout = faults.plan.load_timeout_s
        start = self.env.now
        if timeout is not None and stall > timeout:
            # Wait only until the load-timeout budget fires, then hand
            # the layer to the reactive path instead of blocking on it.
            yield self.env.timeout(timeout)
            self.runtime.trace.record(start, self.env.now, "loader",
                                      Phase.FAULT,
                                      f"{instr.name}/load-timeout")
            faults.counters.fallbacks += 1
            return True
        yield self.env.timeout(stall)
        self.runtime.trace.record(start, self.env.now, "loader",
                                  Phase.FAULT, f"{instr.name}/loader-stall")
        faults.counters.loader_stalls += 1
        return False

    def _plan_instruction(self, instr: Instruction):
        """Decide how ``instr`` executes; perform proactive loads."""
        if instr.kind is InstrKind.NOOP:
            return (instr, PLAN_NOOP, None)
        if instr.kind is InstrKind.BLAS_GEMM:
            if not self.config.manage_blas:
                # hipBLAS loads internally; stock PASK cannot preload it.
                return (instr, PLAN_BLAS, None)
            # Sec. VI extension: PASK hooked into the BLAS library too.
            desired = self.blas.find_best(instr.problem)
            plan = yield from self._plan_primitive(instr, desired,
                                                   instr.problem)
            return plan
        if instr.kind is InstrKind.ENGINE_KERNEL:
            try:
                yield from self.runtime.module_load(self._engine_bundle,
                                                    actor="loader")
            except LoadFault:
                self._count_fallback()
                return (instr, PLAN_FALLBACK, None)
            return (instr, PLAN_ENGINE, None)

        desired = self.library.solution_by_name(instr.solution_name)
        plan = yield from self._plan_primitive(instr, desired, instr.problem)
        return plan

    def _plan_primitive(self, instr: Instruction, desired, problem):
        main_co = desired.code_object_for(problem)
        casts = desired.transform_code_objects(problem)

        gpu_idle = self.runtime.stream.available_at <= self.env.now
        at_or_past_milestone = (self.tracker.check(instr.index, gpu_idle)
                                or self.config.reuse_before_milestone)

        if self.runtime.is_loaded(main_co.name):
            # Desired solution already resident (Algorithm 1 line 3).
            if main_co.name in self.runtime.restored_names:
                self.shared.restored_hits += 1
            try:
                yield from self._load_all(casts)
            except LoadFault:
                self._count_fallback()
                return (instr, PLAN_FALLBACK, None)
            self._cache_insert(LoadedInstance(desired, problem))
            return (instr, PLAN_DESIRED, desired)

        if (self.config.reuse_enabled and at_or_past_milestone
                and len(self.cache)):
            result = self.cache.get_sub_solution(desired, problem)
            run_problem = problem
            if (not result.hit and self.config.precision_fallback
                    and problem.dtype.is_low_precision):
                # Sec. VI extension: "one may choose to still use
                # high-precision data types if the corresponding kernels
                # are already loaded while the low-precision ones are
                # not".  Check whether the fp32-equivalent problem's
                # desired binary is resident; fall back to a cache query
                # on the fp32 problem otherwise.
                fp32_problem = _as_fp32(problem)
                fp32_desired = (self.blas.find_best(fp32_problem)
                                if fp32_problem.kind is PrimitiveKind.GEMM
                                else self.library.find_best(fp32_problem))
                fp32_co = fp32_desired.code_object_for(fp32_problem)
                if self.runtime.is_loaded(fp32_co.name):
                    fp32_hit = QueryResult(
                        LoadedInstance(fp32_desired, fp32_problem),
                        lookups=1, check_cost_s=fp32_desired.check_cost_s)
                    self.cache.stats.observe(fp32_hit)
                    result = fp32_hit
                else:
                    result = self.cache.get_sub_solution(fp32_desired,
                                                         fp32_problem)
                run_problem = fp32_problem
            if result.check_cost_s > 0:
                start = self.env.now
                yield self.env.timeout(result.check_cost_s)
                self.runtime.trace.record(start, self.env.now, "loader",
                                          Phase.CHECK, instr.name,
                                          lookups=result.lookups)
            yield from self._bill_overhead()
            if self.metrics is not None:
                self._m_checks.inc(
                    outcome="hit" if result.hit else "miss")
            if result.hit:
                instance = result.instance
                # The substitute's binary is resident; only layout casts
                # for the *new* problem may still need loading, which is
                # far cheaper than loading the desired solution chain.
                try:
                    yield from self._load_all(
                        instance.solution.transform_code_objects(run_problem))
                except LoadFault:
                    self._count_fallback()
                    return (instr, PLAN_FALLBACK, None)
                self.shared.reused_layers += 1
                self.shared.skipped_loads += 1
                self.shared.skipped_desired.append((desired, problem))
                return (instr, PLAN_REUSE, (instance, run_problem))

        # No substitute: load the desired solution from scratch.
        try:
            yield from self._load_all((main_co,) + casts)
        except LoadFault:
            self._count_fallback()
            return (instr, PLAN_FALLBACK, None)
        self._cache_insert(LoadedInstance(desired, problem))
        return (instr, PLAN_DESIRED, desired)

    def _load_all(self, code_objects):
        for code_object in code_objects:
            yield from self.runtime.module_load(code_object, actor="loader")

    def _count_fallback(self) -> None:
        if self.runtime.faults is not None:
            self.runtime.faults.counters.fallbacks += 1

    def _cache_insert(self, instance: LoadedInstance):
        self.cache.insert(instance)

    def _bill_overhead(self):
        start = self.env.now
        yield self.env.timeout(_CACHE_OP_OVERHEAD_S)
        self.runtime.trace.record(start, self.env.now, "loader",
                                  Phase.OVERHEAD, "cache-op")

    # ------------------------------------------------------------------
    # Issuer thread
    # ------------------------------------------------------------------
    def _issuer(self, inbox: Channel):
        while True:
            item = yield inbox.get()
            if item is ChannelClosed:
                return
            instr, plan, payload = item
            completion = None
            if plan is PLAN_NOOP:
                self.tracker.record_executed(instr.index)
                continue
            if plan is PLAN_BLAS:
                completion = yield from self.blas.run_gemm(
                    self.runtime, instr.problem, actor="issuer",
                    label=instr.name)
            elif plan is PLAN_ENGINE:
                kernel = instr.engine_kernel
                duration = kernel_time(kernel.flops, kernel.bytes_moved,
                                       _ENGINE_KERNEL_EFFICIENCY,
                                       self.runtime.device)
                completion = yield from self.runtime.launch_kernel(
                    self._engine_bundle, kernel.name,
                    duration, actor="issuer", label=instr.name, lazy=False)
            elif plan is PLAN_DESIRED:
                completion = yield from self.library.run_solution(
                    self.runtime, instr.problem, payload, actor="issuer",
                    label=instr.name, lazy=False)
            elif plan is PLAN_REUSE:
                instance, run_problem = payload
                completion = yield from self.library.run_solution(
                    self.runtime, run_problem, instance.solution,
                    tuned_for=instance.tuned_for, actor="issuer",
                    label=f"{instr.name}/reused", lazy=False)
            elif plan is PLAN_FALLBACK:
                completion = yield from self._issue_reactive(instr)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown plan {plan!r}")
            if completion is not None:
                self._watch_completion(completion, instr.index)

    def _issue_reactive(self, instr: Instruction):
        """Execute ``instr`` through the reactive lazy launch path --
        the fallback when the proactive loader gave up on it."""
        if instr.kind is InstrKind.NOOP:
            self.tracker.record_executed(instr.index)
            return None
        if instr.kind is InstrKind.BLAS_GEMM:
            completion = yield from self.blas.run_gemm(
                self.runtime, instr.problem, actor="issuer",
                label=instr.name)
            return completion
        if instr.kind is InstrKind.ENGINE_KERNEL:
            kernel = instr.engine_kernel
            duration = kernel_time(kernel.flops, kernel.bytes_moved,
                                   _ENGINE_KERNEL_EFFICIENCY,
                                   self.runtime.device)
            completion = yield from self.runtime.launch_kernel(
                self._engine_bundle, kernel.name, duration,
                actor="issuer", label=f"{instr.name}/fallback", lazy=True)
            return completion
        desired = self.library.solution_by_name(instr.solution_name)
        completion = yield from self.library.run_solution(
            self.runtime, instr.problem, desired, actor="issuer",
            label=f"{instr.name}/fallback", lazy=True)
        return completion

    def _watch_completion(self, completion, index: int):
        tracker = self.tracker

        def watcher():
            yield completion
            tracker.record_executed(index)

        self.env.process(watcher(), name=f"watch-{index}")
