"""The six evaluated serving schemes (Sec. IV "Evaluated schemes").

- ``BASELINE``: the default reactive workflow -- parse everything, then
  launch layer by layer with lazy on-demand code loading.
- ``NNV12``: layout-native solution selection (no tensor casts) plus a
  load/execute pipeline, but no parse-time proactivity and no reuse.
- ``IDEAL``: hot execution -- every code object already resident.
- ``PASK``: full design (interleaved execution + categorical reuse).
- ``PASK_I``: interleaved execution only.
- ``PASK_R``: selective reuse only, with the naive exhaustive cache and
  the baseline's reactive (non-interleaved) execution.

All executors share one generator signature and return a stats dict; the
serving harness (:mod:`repro.serving.server`) wraps them into
:class:`~repro.core.results.ExecutionResult`.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.core.cache import LoadedInstance, NaiveSolutionCache
from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.engine.instruction import Instruction, InstrKind
from repro.engine.lowering import LoweringOptions
from repro.engine.program import Program
from repro.gpu.codeobject import CodeObjectFile
from repro.gpu.runtime import HipRuntime
from repro.primitive.blas import BlasLibrary
from repro.primitive.library import MIOpenLibrary
from repro.primitive.perf_model import kernel_time
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.core import Environment
from repro.sim.trace import Phase

__all__ = ["Scheme", "build_executor", "program_code_objects"]

_ENGINE_KERNEL_EFFICIENCY = 0.60
# Fixed per-request framework setup (context handles, workspace alloc,
# input staging) -- part of the "others" share in the breakdowns.
_REQUEST_SETUP_S = 250e-6
# Host-to-device DMA bandwidth for weight upload (PCIe 4.0 x16,
# pinned-memory effective rate).
_H2D_BANDWIDTH = 16e9


class Scheme(enum.Enum):
    """Evaluated serving schemes."""

    BASELINE = "Baseline"
    NNV12 = "NNV12"
    IDEAL = "Ideal"
    PASK = "PaSK"
    PASK_I = "PaSK-I"
    PASK_R = "PaSK-R"

    @property
    def label(self) -> str:
        """The paper's display name for this scheme."""
        return self.value

    def lowering_options(self, batch: int = 1) -> LoweringOptions:
        """The offline find policy this scheme serves with.

        NNV12 selects layout-native solutions (its cold-start design is
        precisely the avoidance of tensor layout interchange); every
        other scheme serves the library's default performance-ranked
        lowering.
        """
        if self is Scheme.NNV12:
            return LoweringOptions(batch=batch, native_layout_only=True,
                                   include_transform_cost=True,
                                   consolidate_buckets=True)
        return LoweringOptions(batch=batch)


def program_code_objects(program: Program, library: MIOpenLibrary,
                         blas: BlasLibrary) -> List[CodeObjectFile]:
    """Every code object ``program`` touches (the Ideal scheme's preload)."""
    out: Dict[str, CodeObjectFile] = {}
    for instr in program.instructions:
        if instr.kind is InstrKind.MIOPEN_PRIMITIVE:
            solution = library.solution_by_name(instr.solution_name)
            for co in ((solution.code_object_for(instr.problem),)
                       + solution.transform_code_objects(instr.problem)):
                out[co.name] = co
        elif instr.kind is InstrKind.ENGINE_KERNEL:
            co = program.engine_bundle
            out[co.name] = co
        elif instr.kind is InstrKind.BLAS_GEMM:
            solution = blas.find_best(instr.problem)
            co = solution.code_object_for(instr.problem)
            out[co.name] = co
    return list(out.values())


# ----------------------------------------------------------------------
# Shared execution helpers
# ----------------------------------------------------------------------

def _parse_all(env: Environment, runtime: HipRuntime, program: Program,
               actor: str = "host"):
    """Reactive frameworks parse the whole model before launching."""
    for instr in program.instructions:
        start = env.now
        yield env.timeout(instr.parse_cost_s)
        runtime.trace.record(start, env.now, actor, Phase.PARSE, instr.name)


def _request_setup(env: Environment, runtime: HipRuntime):
    start = env.now
    yield env.timeout(_REQUEST_SETUP_S)
    runtime.trace.record(start, env.now, "host", Phase.OTHER, "request-setup")


def _upload_weights(env: Environment, runtime: HipRuntime, program: Program,
                    actor: str = "host"):
    """Copy the model weights to device memory (opt-in; see
    ``InferenceServer(upload_weights=True)``).

    Reactive schemes pay this serially before launching; PASK runs it as
    a concurrent DMA alongside parsing and loading.
    """
    if not program.metadata.get("upload_weights"):
        return
    weight_bytes = program.metadata.get("weight_bytes", 0)
    if weight_bytes <= 0:
        return
    start = env.now
    yield env.timeout(weight_bytes / _H2D_BANDWIDTH)
    runtime.trace.record(start, env.now, actor, Phase.OTHER,
                         "weight-upload", bytes=weight_bytes)
    # Weights persist in device memory: later requests on this program
    # instance (e.g. within a session) skip the upload.
    program.metadata["upload_weights"] = False


def _issue_instruction(env: Environment, runtime: HipRuntime,
                       library: MIOpenLibrary, blas: BlasLibrary,
                       instr: Instruction, actor: str, lazy: bool,
                       engine_bundle=None):
    """Execute one instruction reactively; returns its completion event."""
    if instr.kind is InstrKind.NOOP:
        return None
    if instr.kind is InstrKind.BLAS_GEMM:
        completion = yield from blas.run_gemm(runtime, instr.problem,
                                              actor=actor, label=instr.name)
        return completion
    if instr.kind is InstrKind.ENGINE_KERNEL:
        kernel = instr.engine_kernel
        code_object = engine_bundle if engine_bundle is not None \
            else kernel.code_object
        duration = kernel_time(kernel.flops, kernel.bytes_moved,
                               _ENGINE_KERNEL_EFFICIENCY, runtime.device)
        completion = yield from runtime.launch_kernel(
            code_object, kernel.name, duration,
            actor=actor, label=instr.name, lazy=lazy)
        return completion
    solution = library.solution_by_name(instr.solution_name)
    completion = yield from library.run_solution(
        runtime, instr.problem, solution, actor=actor, label=instr.name,
        lazy=lazy)
    return completion


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

def _run_baseline(env, runtime, library, blas, program) -> Dict[str, Any]:
    bundle = program.engine_bundle
    yield from _request_setup(env, runtime)
    yield from _upload_weights(env, runtime, program)
    yield from _parse_all(env, runtime, program)
    for instr in program.instructions:
        yield from _issue_instruction(env, runtime, library, blas, instr,
                                      actor="host", lazy=True,
                                      engine_bundle=bundle)
    yield from runtime.synchronize()
    return {}


def _run_ideal(env, runtime, library, blas, program) -> Dict[str, Any]:
    runtime.preload(program_code_objects(program, library, blas))
    stats = yield from _run_baseline(env, runtime, library, blas, program)
    return stats


def _run_nnv12(env, runtime, library, blas, program) -> Dict[str, Any]:
    """NNV12: cold-start-aware offline kernel selection + advance loading.

    Offline, NNV12's lowered model picks layout-native, bucket-shared
    solutions (its kernel-selection design).  Online it "selectively
    loads the transformed weights in advance": a dedicated thread streams
    the selected binaries while execution proceeds.  Unlike PASK there is
    no parse-time proactivity (loading starts only after the model is
    parsed) and no runtime reuse.
    """
    bundle = program.engine_bundle
    yield from _request_setup(env, runtime)
    yield from _upload_weights(env, runtime, program)
    yield from _parse_all(env, runtime, program)
    channel = Channel(env, None, name="nnv12-load->issue")

    def loader():
        for instr in program.instructions:
            if instr.kind is InstrKind.MIOPEN_PRIMITIVE:
                solution = library.solution_by_name(instr.solution_name)
                for co in ((solution.code_object_for(instr.problem),)
                           + solution.transform_code_objects(instr.problem)):
                    yield from runtime.module_load(co, actor="loader")
            elif instr.kind is InstrKind.ENGINE_KERNEL:
                yield from runtime.module_load(bundle, actor="loader")
            yield channel.put(instr)
        channel.close()

    def issuer():
        while True:
            instr = yield channel.get()
            if instr is ChannelClosed:
                return
            lazy = instr.kind is InstrKind.BLAS_GEMM
            yield from _issue_instruction(env, runtime, library, blas, instr,
                                          actor="issuer", lazy=lazy,
                                          engine_bundle=bundle)

    loader_proc = env.process(loader(), "nnv12-loader")
    issuer_proc = env.process(issuer(), "nnv12-issuer")
    yield env.all_of([loader_proc, issuer_proc])
    yield from runtime.synchronize()
    return {}


def _run_pask(env, runtime, library, blas, program,
              config: PaskConfig) -> Dict[str, Any]:
    yield from _request_setup(env, runtime)
    # PASK overlaps the weight DMA with parsing/loading (a concurrent
    # copy engine transfer), instead of paying it serially.
    uploader = env.process(_upload_weights(env, runtime, program,
                                           actor="dma"), "weight-dma")
    middleware = PaskMiddleware(env, runtime, library, blas, config)
    stats = yield from middleware.execute(program)
    yield uploader
    return stats


def _run_pask_r(env, runtime, library, blas, program) -> Dict[str, Any]:
    """Reuse without interleaving, on the naive exhaustive cache."""
    bundle = program.engine_bundle
    yield from _request_setup(env, runtime)
    yield from _upload_weights(env, runtime, program)
    yield from _parse_all(env, runtime, program)
    cache = NaiveSolutionCache()
    reused = 0
    skipped = 0
    for instr in program.instructions:
        if instr.kind is not InstrKind.MIOPEN_PRIMITIVE:
            yield from _issue_instruction(env, runtime, library, blas, instr,
                                          actor="host", lazy=True,
                                          engine_bundle=bundle)
            continue
        desired = library.solution_by_name(instr.solution_name)
        problem = instr.problem
        main_co = desired.code_object_for(problem)
        if runtime.is_loaded(main_co.name):
            yield from _issue_instruction(env, runtime, library, blas, instr,
                                          actor="host", lazy=True,
                                          engine_bundle=bundle)
            cache.insert(LoadedInstance(desired, problem))
            continue
        result = cache.get_sub_solution(desired, problem)
        if result.check_cost_s > 0:
            start = env.now
            yield env.timeout(result.check_cost_s)
            runtime.trace.record(start, env.now, "host", Phase.CHECK,
                                 instr.name, lookups=result.lookups)
        if result.hit:
            instance = result.instance
            yield from library.run_solution(
                runtime, problem, instance.solution,
                tuned_for=instance.tuned_for, actor="host",
                label=f"{instr.name}/reused", lazy=True)
            reused += 1
            skipped += 1
            continue
        yield from _issue_instruction(env, runtime, library, blas, instr,
                                      actor="host", lazy=True,
                                      engine_bundle=bundle)
        cache.insert(LoadedInstance(desired, problem))
    yield from runtime.synchronize()
    return {"cache_stats": cache.stats, "reused_layers": reused,
            "skipped_loads": skipped}


def build_executor(scheme: Scheme):
    """The executor generator-function for ``scheme``.

    Executors have signature ``(env, runtime, library, blas, program)``
    and return a stats dict when driven to completion.
    """
    if scheme is Scheme.BASELINE:
        return _run_baseline
    if scheme is Scheme.IDEAL:
        return _run_ideal
    if scheme is Scheme.NNV12:
        return _run_nnv12
    if scheme is Scheme.PASK:
        return lambda *args: _run_pask(*args, config=PaskConfig())
    if scheme is Scheme.PASK_I:
        return lambda *args: _run_pask(
            *args, config=PaskConfig(reuse_enabled=False))
    if scheme is Scheme.PASK_R:
        return _run_pask_r
    raise ValueError(f"unknown scheme {scheme!r}")
