"""Execution results: everything the experiments measure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.cache import CacheStats
from repro.sim.faults import FaultCounters
from repro.sim.trace import Phase, TraceRecorder

__all__ = ["ExecutionResult"]


@dataclass
class ExecutionResult:
    """Outcome of serving one inference request under one scheme."""

    scheme: str
    model: str
    batch: int
    total_time: float
    trace: TraceRecorder
    loads: int = 0
    loaded_bytes: int = 0
    milestone: Optional[int] = None
    cache_stats: Optional[CacheStats] = None
    reused_layers: int = 0
    skipped_loads: int = 0
    # Fault-injection outcome: counters when a FaultPlan was threaded
    # through the run, and whether the request explicitly failed after
    # all mitigation (retries, fallbacks) was exhausted.
    faults: Optional[FaultCounters] = None
    failed: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def gpu_utilization(self) -> float:
        """Fraction of the request during which the GPU computed (Fig. 6b)."""
        return self.trace.utilization("gpu", total_time=self.total_time)

    def phase_fraction(self, phase: Phase) -> float:
        """Fraction of total time spent in ``phase`` (busy-time based)."""
        if self.total_time <= 0:
            return 0.0
        return self.trace.busy_time(phase=phase) / self.total_time

    def breakdown(self) -> Dict[str, float]:
        """The Fig. 7-style breakdown: compute / loading / overhead / other.

        Phases overlap under interleaved execution, so each wall-clock
        instant is attributed exclusively, GPU compute winning first,
        then loading, then PASK bookkeeping.  'Others' absorbs the
        remainder (parse, issue, sync, idle waits) so the four fractions
        sum to 1.
        """
        exclusive = self.trace.exclusive_fractions(
            [Phase.EXEC, Phase.LOAD, Phase.CHECK, Phase.OVERHEAD],
            total_time=self.total_time)
        compute = exclusive[Phase.EXEC]
        loading = exclusive[Phase.LOAD]
        overhead = exclusive[Phase.CHECK] + exclusive[Phase.OVERHEAD]
        other = max(0.0, 1.0 - compute - loading - overhead)
        return {"gpu_compute": compute, "solution_loading": loading,
                "pask_overhead": overhead, "others": other}

    def speedup_over(self, other: "ExecutionResult") -> float:
        """How much faster this run is than ``other`` (>1 means faster)."""
        if self.total_time <= 0:
            raise ValueError("cannot compute speedup of a zero-time run")
        return other.total_time / self.total_time

    def __repr__(self) -> str:
        return (f"<ExecutionResult {self.model}/{self.scheme} "
                f"batch={self.batch} t={self.total_time * 1e3:.2f}ms "
                f"loads={self.loads}>")
