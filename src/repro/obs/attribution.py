"""Cold-start attribution: apportion request latency to its causes.

The paper's headline figures are attribution claims — Fig. 1(b)
decomposes first-inference latency into parse/load/issue/exec, Fig. 7
isolates the CHECK/OVERHEAD cost PASK itself adds.  This module
reproduces those decompositions at *per-request* granularity from causal
spans (:mod:`repro.obs.spans`), and goes one level deeper: it names the
specific code objects whose loads sat on the critical path and totals
their bytes ("load bytes on critical path" per scheme).

Attribution semantics
---------------------
Every wall-clock instant inside the attribution window is assigned to
exactly **one** phase.  Phases are claimed in priority order — by
default ``EXEC > LOAD > CHECK > OVERHEAD``, matching
:meth:`repro.core.results.ExecutionResult.breakdown` — using the same
canonical interval algebra as the trace recorder
(:func:`~repro.sim.trace.merge_intervals` /
:func:`~repro.sim.trace.subtract_intervals`).  Whatever no span covers
is ``others`` (host sync, queue wait, idle gaps), computed as the exact
float remainder ``total - sum(phases)`` so the components always sum to
the request latency.

Within LOAD, each code object's spans are subtracted against the
running claimed union in deterministic order, so per-object seconds
also sum to the phase total; an object is *on the critical path* iff
its exclusive seconds are positive.

:func:`spans_breakdown` is the non-exclusive variant (merged busy time
per phase / total) and is byte-identical to
:meth:`repro.sim.trace.TraceRecorder.breakdown` over the same records —
pinned by tests for the paper's four schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import Span
from repro.sim.trace import (Phase, TraceRecorder, merge_intervals,
                             subtract_intervals)

__all__ = [
    "Attribution", "DEFAULT_PRIORITIES", "attribute_spans",
    "attribute_request", "attribute_result", "spans_breakdown",
    "spans_from_trace",
]

DEFAULT_PRIORITIES: Tuple[Phase, ...] = (
    Phase.EXEC, Phase.LOAD, Phase.CHECK, Phase.OVERHEAD)

Interval = Tuple[float, float]


@dataclass
class Attribution:
    """One attribution verdict: who owns each second of the window."""

    window: Interval
    phase_seconds: Dict[Phase, float]
    others_seconds: float
    load_seconds: Dict[str, float]
    load_bytes: Dict[str, int]

    #: Labels excluded from the per-object load table (symbol resolves).
    notes: Tuple[str, ...] = field(default=())

    @property
    def total_time(self) -> float:
        return self.window[1] - self.window[0]

    @property
    def critical_loads(self) -> List[str]:
        """Code objects whose load time sat on the critical path."""
        return [name for name in self.load_seconds
                if self.load_seconds[name] > 0.0]

    @property
    def critical_load_bytes(self) -> int:
        """Total bytes of code objects loaded on the critical path."""
        return sum(self.load_bytes.get(name, 0)
                   for name in self.critical_loads)

    def components(self) -> Dict[str, float]:
        """Phase seconds plus ``others`` — sums to ``total_time``."""
        out = {phase.value: seconds
               for phase, seconds in self.phase_seconds.items()}
        out["others"] = self.others_seconds
        return out

    def fractions(self) -> Dict[str, float]:
        """``components`` normalized by ``total_time`` (zeros if empty)."""
        total = self.total_time
        if total <= 0:
            return {name: 0.0 for name in self.components()}
        return {name: seconds / total
                for name, seconds in self.components().items()}

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form for reports and the CLI."""
        return {
            "window": list(self.window),
            "total_time": self.total_time,
            "components": self.components(),
            "load_seconds": {k: self.load_seconds[k]
                             for k in sorted(self.load_seconds)},
            "load_bytes": {k: self.load_bytes[k]
                           for k in sorted(self.load_bytes)},
            "critical_loads": sorted(self.critical_loads),
            "critical_load_bytes": self.critical_load_bytes,
        }


def _clip(spans: Iterable[Span], window: Interval) -> List[Span]:
    lo, hi = window
    out = []
    for span in spans:
        if span.end < lo or span.start > hi:
            continue
        if span.start >= lo and span.end <= hi:
            out.append(span)
        else:
            out.append(Span(span.span_id, span.name, span.category,
                            span.actor, max(span.start, lo),
                            min(span.end, hi), span.parent_id,
                            span.links, span.attrs))
    return out


def attribute_spans(spans: Sequence[Span],
                    window: Optional[Interval] = None,
                    priorities: Sequence[Phase] = DEFAULT_PRIORITIES
                    ) -> Attribution:
    """Attribute the window's wall-clock to phases and code objects.

    ``window`` defaults to the extent of the spans themselves.  Spans
    straddling the window are clipped to it, so the components always
    sum exactly (float-exactly, not approximately) to the window length
    minus nothing: ``sum(phase_seconds) + others == total_time``.
    """
    timed = [s for s in spans if s.category not in ("request", "decision")]
    if window is None:
        if timed:
            window = (min(s.start for s in timed),
                      max(s.end for s in timed))
        else:
            window = (0.0, 0.0)
    timed = _clip(timed, window)

    by_phase: Dict[str, List[Span]] = {}
    for span in timed:
        by_phase.setdefault(span.category, []).append(span)

    claimed: List[Interval] = []
    phase_seconds: Dict[Phase, float] = {}
    load_seconds: Dict[str, float] = {}
    load_bytes: Dict[str, int] = {}
    for phase in priorities:
        mine_spans = by_phase.get(phase.value, [])
        mine = merge_intervals(s.interval for s in mine_spans)
        exclusive = subtract_intervals(mine, claimed)
        phase_seconds[phase] = sum(e - s for s, e in exclusive)
        if phase is Phase.LOAD and mine_spans:
            # Deterministic per-object pass: each load claims what the
            # higher-priority phases and earlier loads left uncovered.
            running = claimed
            for span in sorted(mine_spans,
                               key=lambda s: (s.start, s.end, s.name,
                                              s.span_id)):
                piece = subtract_intervals(
                    merge_intervals([span.interval]), running)
                seconds = sum(e - s for s, e in piece)
                load_seconds[span.name] = (
                    load_seconds.get(span.name, 0.0) + seconds)
                size = dict(span.attrs).get("size")
                if isinstance(size, (int, float)):
                    load_bytes[span.name] = max(
                        load_bytes.get(span.name, 0), int(size))
                else:
                    load_bytes.setdefault(span.name, 0)
                running = merge_intervals(running + [span.interval])
        claimed = merge_intervals(claimed + mine)

    total = window[1] - window[0]
    others = max(0.0, total - sum(phase_seconds.values()))
    return Attribution(window, phase_seconds, others,
                       load_seconds, load_bytes)


def attribute_request(spans: Sequence[Span], request: Span,
                      priorities: Sequence[Phase] = DEFAULT_PRIORITIES
                      ) -> Attribution:
    """Attribute one request-lifecycle span from its children.

    ``spans`` is the full recorder contents; only spans parented to
    ``request`` participate, and the window is the request's own
    interval — so the components sum to the request latency.
    """
    children = [s for s in spans if s.parent_id == request.span_id]
    return attribute_spans(children, window=request.interval,
                           priorities=priorities)


def spans_from_trace(trace: TraceRecorder) -> List[Span]:
    """Mirror a recorder's retained records into spans (no links).

    Post-hoc path for results produced without live telemetry: interval
    attribution needs only (interval, phase, label, meta), which the
    retained records carry.  Under aggregate retention only the ring is
    visible — attribute live spans instead for long runs.
    """
    return [Span(i + 1, rec.label, rec.phase.value, rec.actor,
                 rec.start, rec.end, None, (), rec.meta)
            for i, rec in enumerate(trace.filtered())]


def attribute_result(result: "object",
                     priorities: Sequence[Phase] = DEFAULT_PRIORITIES
                     ) -> Attribution:
    """Attribute a whole :class:`~repro.core.results.ExecutionResult`.

    The window is the result's trace span, so ``fractions()`` lines up
    with the paper's whole-run breakdown figures.
    """
    trace: TraceRecorder = result.trace  # type: ignore[attr-defined]
    start, end = trace.span()
    return attribute_spans(spans_from_trace(trace), window=(start, end),
                           priorities=priorities)


def spans_breakdown(spans: Sequence[Span], phases: Sequence[Phase],
                    total_time: Optional[float] = None
                    ) -> Dict[Phase, float]:
    """Non-exclusive per-phase busy fractions from spans.

    Byte-identical to :meth:`TraceRecorder.breakdown` over the same
    records: the merged union of a point set is canonical (its endpoints
    are input floats) and both sides sum segments left-to-right.
    """
    timed = [s for s in spans if s.category not in ("request", "decision")]
    if total_time is None:
        if timed:
            total_time = (max(s.end for s in timed)
                          - min(s.start for s in timed))
        else:
            total_time = 0.0
    if total_time <= 0:
        return {phase: 0.0 for phase in phases}
    out: Dict[Phase, float] = {}
    for phase in phases:
        union = merge_intervals(
            s.interval for s in timed if s.category == phase.value)
        out[phase] = sum(e - s for s, e in union) / total_time
    return out
