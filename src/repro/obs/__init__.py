"""repro.obs — telemetry: causal spans, attribution, exporters, metrics.

The observability layer of the simulator.  Everything here is opt-in
and zero-cost when disabled: the stack holds
:data:`~repro.obs.spans.NULL_RECORDER` unless a caller passes a real
:class:`~repro.obs.spans.SpanRecorder` /
:class:`~repro.obs.metrics.MetricsRegistry`, and golden replays stay
byte-identical with telemetry off.

See docs/OBSERVABILITY.md for the span model, attribution semantics and
exporter formats.
"""

from repro.obs.attribution import (Attribution, attribute_request,
                                   attribute_result, attribute_spans,
                                   spans_breakdown, spans_from_trace)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               exponential_buckets, merge_dumps,
                               validate_dump)
from repro.obs.monitors import (Alert, SLOMonitorSet, SLOPolicy,
                                emit_alert_spans, validate_monitors)
from repro.obs.perfetto import (spans_summary, to_perfetto, trace_events,
                                validate_trace, write_trace)
from repro.obs.spans import NULL_RECORDER, NullRecorder, Span, SpanRecorder

__all__ = [
    "Span", "SpanRecorder", "NullRecorder", "NULL_RECORDER",
    "Attribution", "attribute_spans", "attribute_request",
    "attribute_result", "spans_breakdown", "spans_from_trace",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "exponential_buckets", "merge_dumps", "validate_dump",
    "trace_events", "to_perfetto", "write_trace", "validate_trace",
    "spans_summary",
    "SLOPolicy", "Alert", "SLOMonitorSet", "validate_monitors",
    "emit_alert_spans", "FlightRecorder",
]
