"""Causal spans: hierarchical, linkable telemetry over the simulation.

A :class:`Span` is one timed activity with an identity: a stable
``span_id``, an optional ``parent_id`` (the request it belongs to) and
``links`` to the spans it causally waited on.  The flat
:class:`~repro.sim.trace.TraceRecord` stream answers *how much* time each
phase took; spans answer *which* code-object load sat on *which*
request's critical path, and feed the Perfetto exporter
(:mod:`repro.obs.perfetto`) and the cold-start attribution analyzer
(:mod:`repro.obs.attribution`).

Recording is observer-based: :meth:`SpanRecorder.bind` hooks a
:class:`~repro.sim.trace.TraceRecorder`, so every trace record emitted
anywhere in the stack (runtime loads, stream execs, middleware
check/preload decisions, fault injections, cluster serves — including
the intervals synthesized by the cluster fast-forward path) mirrors into
a span with the *same* start/end floats.  That mirroring is what keeps
span-based attribution byte-identical to the trace-based breakdowns.

Causality is supplied at the emitting sites:

- :meth:`SpanRecorder.stage_exec_links` — the runtime stages the LOAD /
  CHECK span ids a kernel waited on just before enqueueing it; the next
  EXEC span consumes them.
- :meth:`SpanRecorder.request` / :meth:`SpanRecorder.span` — context
  managers for request lifecycles and explicit host-side sections; all
  spans observed inside a request parent to it.
- :meth:`SpanRecorder.event` — zero-duration decision markers (e.g. the
  PASK loader's plan choice per layer).

When telemetry is off the stack holds the :data:`NULL_RECORDER`
singleton instead: every method is a no-op, ``span()``/``request()``
return one shared do-nothing context manager, and **no span objects are
allocated** — the simulation is byte-identical to a build without this
module (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple)

from repro.sim.trace import Phase, TraceRecord, TraceRecorder

__all__ = ["Span", "SpanRecorder", "NullRecorder", "NULL_RECORDER"]


@dataclass(frozen=True)
class Span:
    """One identified, linkable timed activity."""

    span_id: int
    name: str
    category: str               # a Phase value, "request", or "decision"
    actor: str
    start: float
    end: float
    parent_id: Optional[int] = None
    links: Tuple[int, ...] = ()
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start

    @property
    def interval(self) -> Tuple[float, float]:
        """The ``(start, end)`` pair."""
        return (self.start, self.end)


class _NullContext:
    """Shared do-nothing context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled telemetry path: every operation is a no-op.

    Shared as the :data:`NULL_RECORDER` singleton so hot paths pay one
    attribute lookup and a no-op call, never an allocation.
    """

    __slots__ = ()

    enabled = False
    spans: Tuple[Span, ...] = ()

    def bind(self, trace: TraceRecorder,
             clock: Optional[Callable[[], float]] = None) -> None:
        """No-op: leaves ``trace.observer`` untouched (``None``)."""

    def observe(self, rec: TraceRecord) -> None:
        """No-op."""

    def stage_exec_links(self, code_object_name: str, label: str,
                         symbol_label: Optional[str] = None) -> None:
        """No-op."""

    def drop_staged(self) -> None:
        """No-op."""

    def event(self, name: str, ts: float, actor: str = "host",
              category: str = "decision", **attrs: Any) -> None:
        """No-op."""

    def span(self, name: str, actor: str = "host", category: str = "span",
             **attrs: Any) -> _NullContext:
        """The shared no-op context manager (never a new object)."""
        return _NULL_CONTEXT

    def request(self, name: str, actor: str = "server",
                **attrs: Any) -> _NullContext:
        """The shared no-op context manager (never a new object)."""
        return _NULL_CONTEXT


NULL_RECORDER = NullRecorder()


class _SpanContext:
    """Context manager that records one span on exit.

    The span id is reserved at ``__enter__`` so children created inside
    the block can reference it (ids stay ordered by opening time even
    though the span object itself is appended at close).
    """

    __slots__ = ("_recorder", "_name", "_actor", "_category", "_attrs",
                 "_is_request", "_span_id", "_start", "_prev_request")

    def __init__(self, recorder: "SpanRecorder", name: str, actor: str,
                 category: str, attrs: Tuple[Tuple[str, Any], ...],
                 is_request: bool) -> None:
        self._recorder = recorder
        self._name = name
        self._actor = actor
        self._category = category
        self._attrs = attrs
        self._is_request = is_request
        self._span_id = 0
        self._start = 0.0
        self._prev_request: Optional[int] = None

    def __enter__(self) -> int:
        recorder = self._recorder
        self._span_id = recorder._reserve_id()
        self._start = recorder.clock()
        if self._is_request:
            self._prev_request = recorder._request_id
            recorder._request_id = self._span_id
        return self._span_id

    def __exit__(self, *exc: Any) -> bool:
        recorder = self._recorder
        if self._is_request:
            parent = self._prev_request
            recorder._request_id = self._prev_request
        else:
            parent = recorder._request_id
        recorder._append(Span(
            self._span_id, self._name, self._category, self._actor,
            self._start, recorder.clock(), parent, (), self._attrs))
        return False


class SpanRecorder:
    """Collects causal spans; the enabled counterpart of the null path.

    Span ids are sequential from 1 in creation order, so two identical
    runs produce identical span lists (the determinism the Perfetto
    golden test pins).  ``clock`` supplies "now" for the context-manager
    API — bind it to the simulation clock via :meth:`bind`.
    """

    __slots__ = ("spans", "clock", "_next_id", "_request_id", "_load_spans",
                 "_check_spans", "_staged")

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[Span] = []
        self.clock: Callable[[], float] = clock if clock is not None \
            else (lambda: 0.0)
        self._next_id = 1
        self._request_id: Optional[int] = None
        # Most recent LOAD span per code-object/symbol label and CHECK
        # span per instruction label: the link sources EXEC spans cite.
        self._load_spans: Dict[str, int] = {}
        self._check_spans: Dict[str, int] = {}
        self._staged: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, trace: TraceRecorder,
             clock: Optional[Callable[[], float]] = None) -> None:
        """Observe every record ``trace`` ingests; optionally rebind the
        clock (usually ``lambda: env.now``)."""
        trace.observer = self.observe
        if clock is not None:
            self.clock = clock

    def _reserve_id(self) -> int:
        span_id = self._next_id
        self._next_id = span_id + 1
        return span_id

    def _append(self, span: Span) -> None:
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Observation (the TraceRecorder hook)
    # ------------------------------------------------------------------
    def observe(self, rec: TraceRecord) -> Span:
        """Mirror one trace record into a span.

        The span reuses the record's exact start/end floats, which is
        what keeps span-based attribution byte-identical to the
        trace-based metrics.  LOAD and CHECK spans register themselves
        as link sources; an EXEC span consumes whatever links
        :meth:`stage_exec_links` staged for it.
        """
        phase = rec.phase
        links = ()
        if phase is Phase.EXEC and self._staged:
            links = self._staged
            self._staged = ()
        span = Span(self._reserve_id(), rec.label, phase.value, rec.actor,
                    rec.start, rec.end, self._request_id, links, rec.meta)
        self.spans.append(span)
        if phase is Phase.LOAD:
            self._load_spans[rec.label] = span.span_id
        elif phase is Phase.CHECK:
            self._check_spans[rec.label] = span.span_id
        return span

    # ------------------------------------------------------------------
    # Causal links
    # ------------------------------------------------------------------
    def stage_exec_links(self, code_object_name: str, label: str,
                         symbol_label: Optional[str] = None) -> None:
        """Stage the spans the next EXEC span waited on.

        Called by the runtime just before it enqueues a kernel: the
        kernel depended on its code object's LOAD span, the symbol's
        resolve span (``"module:symbol"``) and the CHECK span of its
        instruction (labels like ``"layer/reused"`` fall back to the
        base name before the ``/``).
        """
        links: List[int] = []
        load_id = self._load_spans.get(code_object_name)
        if load_id is not None:
            links.append(load_id)
        if symbol_label is not None:
            symbol_id = self._load_spans.get(symbol_label)
            if symbol_id is not None and symbol_id not in links:
                links.append(symbol_id)
        check_id = self._check_spans.get(label)
        if check_id is None and "/" in label:
            check_id = self._check_spans.get(label.split("/", 1)[0])
        if check_id is not None:
            links.append(check_id)
        self._staged = tuple(links)

    def drop_staged(self) -> None:
        """Discard staged links (the kernel they were staged for was
        never recorded, e.g. a zero-duration exec)."""
        self._staged = ()

    # ------------------------------------------------------------------
    # Explicit spans
    # ------------------------------------------------------------------
    def event(self, name: str, ts: float, actor: str = "host",
              category: str = "decision", **attrs: Any) -> Span:
        """A zero-duration marker span (e.g. a scheduling decision)."""
        span = Span(self._reserve_id(), name, category, actor, ts, ts,
                    self._request_id, (), tuple(sorted(attrs.items())))
        self.spans.append(span)
        return span

    def span(self, name: str, actor: str = "host", category: str = "span",
             **attrs: Any) -> _SpanContext:
        """Context manager recording one span from enter to exit."""
        return _SpanContext(self, name, actor, category,
                            tuple(sorted(attrs.items())), is_request=False)

    def request(self, name: str, actor: str = "server",
                **attrs: Any) -> _SpanContext:
        """Context manager for a request lifecycle span.

        While the block is open every observed span parents to it, which
        is how per-request attribution scopes a shared recorder.
        """
        return _SpanContext(self, name, actor, "request",
                            tuple(sorted(attrs.items())), is_request=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def by_id(self) -> Dict[int, Span]:
        """Mapping of span id -> span."""
        return {span.span_id: span for span in self.spans}

    def filtered(self, category: Optional[str] = None,
                 actor: Optional[str] = None,
                 parent_id: Optional[int] = None) -> List[Span]:
        """Spans matching the given category/actor/parent filters."""
        return [s for s in self.spans
                if (category is None or s.category == category)
                and (actor is None or s.actor == actor)
                and (parent_id is None or s.parent_id == parent_id)]

    def requests(self) -> List[Span]:
        """All request-lifecycle spans, in creation order."""
        return self.filtered(category="request")

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterable[Span]:
        return iter(self.spans)

    def __repr__(self) -> str:
        return f"SpanRecorder(spans={len(self.spans)})"
