"""Time-warp flight recorder: replay telemetry for sharded fleets.

:func:`repro.fleet.parallel.run_fleet_sharded` resolves state-coupled
routing through optimistic rounds with checkpoint rollback.  The
:class:`FlightRecorder` captures that execution as structured events —
per round: which arrival window every shard simulated, where the router
diverged, how far each shard rolled back — and renders them as
:class:`~repro.obs.spans.Span` lists on the *simulated* time axis, one
track per shard, with ``optimistic`` / ``committed`` / ``rolled-back``
windows.  The spans feed the existing Perfetto pipeline
(:func:`repro.obs.perfetto.write_trace` /
:func:`~repro.obs.perfetto.validate_trace`) unchanged, which is what
``repro trace export --fleet`` ships.

Wall-clock readings deliberately stay *out* of the recorded events (they
live in :class:`~repro.fleet.parallel.ShardReport.round_wall_s`), so a
seeded replay always produces a byte-identical flight trace — the
golden ``tests/data/golden_fleet_trace.json`` pins exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Collects the structured replay events of one sharded fleet run.

    :func:`~repro.fleet.parallel.run_fleet_sharded` drives the recorder
    when one is passed; afterwards :meth:`to_spans` renders the Perfetto
    view and :meth:`summary` / :meth:`to_payload` the JSON digests.
    All recorded quantities are arrival *indices* — pure functions of
    the seeded replay — never wall-clock readings.
    """

    def __init__(self) -> None:
        self.mode: Optional[str] = None
        self.region_names: Tuple[str, ...] = ()
        self.arrivals: Tuple[float, ...] = ()
        # One record per optimistic round:
        #   {"round", "starts", "end", "mismatch", "verified", "restarts"}
        self.rounds: List[Dict[str, Any]] = []
        self.final_recorded = False

    # -- recording hooks (driven by run_fleet_sharded) -----------------

    def begin(self, mode: str, region_names: Sequence[str],
              arrivals: Sequence[float]) -> None:
        self.mode = mode
        self.region_names = tuple(region_names)
        self.arrivals = tuple(arrivals)

    def record_round(self, index: int, starts: Sequence[int], end: int,
                     mismatch: Optional[int], verified: int,
                     restarts: Optional[Sequence[int]] = None) -> None:
        """One optimistic round: every shard simulated
        ``[starts[i], end)``; the router replay diverged at ``mismatch``
        (``None`` on the verifying round) with ``verified`` arrivals
        already proven before the round; ``restarts`` are the rollback
        indices the next round resumes from."""
        self.rounds.append({
            "round": index,
            "starts": list(starts),
            "end": end,
            "mismatch": mismatch,
            "verified": verified,
            "restarts": list(restarts) if restarts is not None else None,
        })

    def record_final(self, end: int) -> None:
        """The full-stats pass committed ``[0, end)`` on every shard."""
        self.final_recorded = True
        self._final_end = end

    # -- digests -------------------------------------------------------

    @property
    def rollbacks(self) -> int:
        """Rounds that ended in a divergence (each rolls every shard
        back)."""
        return sum(1 for r in self.rounds if r["mismatch"] is not None)

    @property
    def max_rollback_depth(self) -> int:
        """Largest per-shard re-simulation a rollback forced."""
        depth = 0
        for rec in self.rounds:
            if rec["restarts"] is None:
                continue
            for restart in rec["restarts"]:
                depth = max(depth, rec["end"] - restart)
        return depth

    @property
    def resimulated(self) -> int:
        """Total arrivals re-simulated across all rollbacks."""
        total = 0
        for rec in self.rounds:
            if rec["restarts"] is None:
                continue
            total += sum(rec["end"] - restart
                         for restart in rec["restarts"])
        return total

    def summary(self) -> Dict[str, Any]:
        verified = [r["verified"] for r in self.rounds]
        return {
            "mode": self.mode,
            "shards": len(self.region_names),
            "rounds": len(self.rounds),
            "rollbacks": self.rollbacks,
            "max_rollback_depth": self.max_rollback_depth,
            "resimulated": self.resimulated,
            "verified_prefix": verified,
        }

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe structured-event dump (rounds + summary)."""
        out = self.summary()
        out["events"] = [dict(rec) for rec in self.rounds]
        return out

    def to_spans(self) -> List[Span]:
        """Render the flight data as deterministic spans.

        One actor (= Perfetto track) per shard plus a ``coordinator``
        track for divergence markers.  Windows map arrival indices to
        the simulated arrival times, so the flight view lines up with
        any request-level trace of the same replay.
        """
        arrivals = self.arrivals
        names = self.region_names
        spans: List[Span] = []
        next_id = 1

        def window(name: str, category: str, actor: str, lo: int,
                   hi: int, **attrs: Any) -> None:
            nonlocal next_id
            if lo >= hi:
                return
            spans.append(Span(
                next_id, name, category, actor,
                arrivals[lo], arrivals[hi - 1], None, (),
                tuple(sorted(attrs.items()))))
            next_id += 1

        for rec in self.rounds:
            index, end = rec["round"], rec["end"]
            for i, start in enumerate(rec["starts"]):
                window(f"round-{index}", "optimistic", f"shard:{names[i]}",
                       start, end, round=index, start_index=start,
                       end_index=end)
            mismatch = rec["mismatch"]
            if mismatch is None:
                continue
            spans.append(Span(
                next_id, "divergence", "divergence", "coordinator",
                arrivals[mismatch], arrivals[mismatch], None, (),
                tuple(sorted({"round": index, "index": mismatch,
                              "verified": rec["verified"]}.items()))))
            next_id += 1
            for i, restart in enumerate(rec["restarts"]):
                window(f"rollback-{index}", "rolled-back",
                       f"shard:{names[i]}", restart, end, round=index,
                       from_index=restart, depth=end - restart)
        if self.final_recorded:
            for i, name in enumerate(names):
                window("final", "committed", f"shard:{names[i]}",
                       0, self._final_end, end_index=self._final_end)
        return spans
