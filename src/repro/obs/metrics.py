"""Deterministic metrics registry: counters, gauges, histograms.

A small, dependency-free cousin of the Prometheus client model, tuned
for a simulator: bucket bounds are *fixed* exponential ladders (never
adapted from data), label sets are sorted, and both dump formats emit in
sorted order — so two identical runs produce byte-identical dumps, and
dumps from parallel bench shards merge associatively.

Instruments are created through a :class:`MetricsRegistry`::

    registry = MetricsRegistry()
    loads = registry.counter("runtime_loads_total", "Module loads")
    loads.labels(device="gfx906").inc()
    latency = registry.histogram("serve_latency_seconds", "Latency",
                                 buckets=exponential_buckets(1e-4, 2, 16))
    latency.observe(0.0123)

Dump with :meth:`MetricsRegistry.to_json` (stable dict for BENCH
reports) or :meth:`MetricsRegistry.to_prometheus` (text exposition
format).  :func:`merge_dumps` folds per-task JSON dumps into one
(counters/histograms add, gauges last-write-wins);``validate_dump``
checks structural invariants and is what ``scripts/validate_bench.py``
uses for the report's ``metrics`` section.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "exponential_buckets", "merge_dumps", "validate_dump",
    "DEFAULT_TIME_BUCKETS", "DEFAULT_SIZE_BUCKETS",
]

LabelKey = Tuple[Tuple[str, str], ...]


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    Fixed ladders keep histograms deterministic and mergeable: the same
    (start, factor, count) always yields the same bounds, regardless of
    the data observed.
    """
    if start <= 0:
        raise ValueError("start must be > 0")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor ** i for i in range(count))


# 100 µs .. ~3.3 s in ×2 steps: covers cold-start latencies in the paper.
DEFAULT_TIME_BUCKETS = exponential_buckets(1e-4, 2.0, 16)
# 1 KiB .. 1 GiB in ×4 steps: code-object / load sizes.
DEFAULT_SIZE_BUCKETS = exponential_buckets(1024.0, 4.0, 11)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without '.0')."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


class _Instrument:
    """Shared base: a named family of per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._series: Dict[LabelKey, Any] = {}

    def _key(self, labels: Mapping[str, str]) -> LabelKey:
        return _label_key(labels)

    @property
    def series(self) -> Dict[LabelKey, Any]:
        return self._series


class _CounterSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Counter(_Instrument):
    """Monotonically increasing count (loads, hits, faults...)."""

    kind = "counter"

    def labels(self, **labels: str) -> _CounterSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _CounterSeries()
        return series

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series.value if series is not None else 0.0


class _GaugeSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, resident bytes)."""

    kind = "gauge"

    def labels(self, **labels: str) -> _GaugeSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _GaugeSeries()
        return series

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series.value if series is not None else 0.0


class _HistogramSeries:
    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        # counts[i] = observations <= bounds[i]; one extra +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class Histogram(_Instrument):
    """Distribution over fixed exponential buckets.

    Bucket counts are per-bucket (not cumulative) internally; dumps emit
    Prometheus-style cumulative ``_bucket`` series.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds

    def labels(self, **labels: str) -> _HistogramSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(self.bounds)
        return series

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """Creates and owns instruments; renders deterministic dumps."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise ValueError(
                    f"metric {instrument.name!r} already registered "
                    f"as {existing.kind}")
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge(name, help_text))  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        instrument = self._register(Histogram(name, help_text, buckets))
        return instrument  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __iter__(self) -> Iterable[_Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Dumps
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Stable JSON-able dump; the BENCH report ``metrics`` payload."""
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            entry: Dict[str, Any] = {"kind": inst.kind, "help": inst.help}
            series_out: List[Dict[str, Any]] = []
            for key in sorted(inst.series):
                series = inst.series[key]
                row: Dict[str, Any] = {"labels": dict(key)}
                if inst.kind == "histogram":
                    row["count"] = series.count
                    row["sum"] = series.total
                    row["buckets"] = list(series.counts)
                else:
                    row["value"] = series.value
                series_out.append(row)
            if inst.kind == "histogram":
                entry["bounds"] = list(inst.bounds)  # type: ignore[attr-defined]
            entry["series"] = series_out
            out[name] = entry
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (sorted, trailing newline)."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            for key in sorted(inst.series):
                series = inst.series[key]
                if inst.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                            list(inst.bounds) + [math.inf],  # type: ignore[attr-defined]
                            series.counts):
                        cumulative += count
                        labels = _format_labels(
                            key, [("le", _format_value(bound))])
                        lines.append(
                            f"{name}_bucket{labels} {cumulative}")
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{_format_value(series.total)}")
                    lines.append(
                        f"{name}_count{_format_labels(key)} {series.count}")
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Merge (for folding per-task dumps into a report-level view)
    # ------------------------------------------------------------------
    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_json` dump into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins).  Histogram bounds must match exactly.
        """
        for name in sorted(dump):
            entry = dump[name]
            kind = entry["kind"]
            if kind == "counter":
                inst: Any = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                inst = self.histogram(name, entry.get("help", ""),
                                      buckets=entry["bounds"])
                if list(inst.bounds) != list(entry["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ")
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            for row in entry["series"]:
                labels = row["labels"]
                series = inst.labels(**labels)
                if kind == "counter":
                    series.inc(row["value"])
                elif kind == "gauge":
                    series.set(row["value"])
                else:
                    incoming = row["buckets"]
                    if len(incoming) != len(series.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket count differs")
                    for i, c in enumerate(incoming):
                        series.counts[i] += c
                    series.count += row["count"]
                    series.total += row["sum"]


def merge_dumps(dumps: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge several :meth:`MetricsRegistry.to_json` dumps into one."""
    registry = MetricsRegistry()
    for dump in dumps:
        registry.merge(dump)
    return registry.to_json()


def validate_dump(dump: Any) -> List[str]:
    """Structural validation of a JSON metrics dump.

    Returns a list of human-readable problems (empty = valid).  Checks:
    top-level mapping of name -> entry, known kinds, well-formed series
    rows, histogram bucket/bound arity, non-negative counter values and
    bucket counts, and that histogram ``count`` equals the bucket sum.
    """
    errors: List[str] = []
    if not isinstance(dump, dict):
        return ["metrics dump must be an object"]
    for name, entry in dump.items():
        where = f"metric {name!r}"
        if not isinstance(entry, dict):
            errors.append(f"{where}: entry must be an object")
            continue
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        series = entry.get("series")
        if not isinstance(series, list):
            errors.append(f"{where}: missing series list")
            continue
        bounds = entry.get("bounds")
        if kind == "histogram":
            if (not isinstance(bounds, list) or not bounds
                    or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:]))):
                errors.append(
                    f"{where}: bounds must be a strictly increasing list")
                continue
        for i, row in enumerate(series):
            rw = f"{where} series[{i}]"
            if not isinstance(row, dict) or not isinstance(
                    row.get("labels"), dict):
                errors.append(f"{rw}: malformed row")
                continue
            if kind == "histogram":
                buckets = row.get("buckets")
                if (not isinstance(buckets, list)
                        or len(buckets) != len(bounds) + 1):
                    errors.append(
                        f"{rw}: expected {len(bounds) + 1} bucket counts")
                    continue
                if any((not isinstance(c, (int, float))) or c < 0
                       for c in buckets):
                    errors.append(f"{rw}: negative bucket count")
                if row.get("count") != sum(buckets):
                    errors.append(
                        f"{rw}: count != sum of bucket counts")
            else:
                value = row.get("value")
                if not isinstance(value, (int, float)):
                    errors.append(f"{rw}: missing numeric value")
                elif kind == "counter" and value < 0:
                    errors.append(f"{rw}: negative counter")
    return errors
