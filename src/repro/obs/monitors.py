"""Streaming SLO monitors: sliding-window burn-rate alerting.

A declared :class:`SLOPolicy` names the targets a replay is held to —
availability, tail latency, cold-serve rate — and a
:class:`SLOMonitorSet` evaluates them *during* the replay over a
sliding time window, emitting deterministic :class:`Alert` events when
a monitor starts or stops burning.  Everything here is dependency-free
and pure-deterministic: the same observation stream always produces the
same alerts, so sharded replays that feed the monitors in global
arrival order reproduce the serial alert stream byte for byte (pinned
by ``tests/test_fleet_obs.py``).

Monitors follow the burn-rate alerting model: the availability monitor
fires when the windowed error rate consumes the error budget
``(1 - target)`` faster than ``burn_threshold`` times the sustainable
rate; the p99 and cold-rate monitors fire on direct threshold crossings
of their windowed statistic.  Each monitor is a two-state machine
(quiet -> firing -> resolved) so alert streams stay sparse under
sustained degradation.

Observations never touch simulation state — attaching monitors to a
replay leaves every latency, counter and trace byte-identical
(the same no-perturbation contract as the rest of :mod:`repro.obs`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["SLOPolicy", "Alert", "SLOMonitorSet", "validate_monitors",
           "emit_alert_spans"]


@dataclass(frozen=True)
class SLOPolicy:
    """A declared service-level objective for a replay.

    ``availability_target`` is always monitored; ``p99_target_s`` and
    ``cold_rate_target`` add their monitors when set.  ``window_s`` is
    the sliding evaluation window (simulated seconds) and
    ``burn_threshold`` the burn-rate multiple at which the availability
    monitor fires (1.0 = burning budget exactly at the sustainable
    rate).
    """

    availability_target: float = 0.999
    p99_target_s: Optional[float] = None
    cold_rate_target: Optional[float] = None
    window_s: float = 5.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if self.p99_target_s is not None and self.p99_target_s <= 0:
            raise ValueError("p99_target_s must be positive")
        if (self.cold_rate_target is not None
                and not 0.0 <= self.cold_rate_target < 1.0):
            raise ValueError("cold_rate_target must be in [0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


@dataclass(frozen=True)
class Alert:
    """One monitor transition: it started (``firing``) or stopped
    (``resolved``) violating its objective at simulated time ``t``."""

    monitor: str               # "availability" | "p99" | "cold-rate"
    state: str                 # "firing" | "resolved"
    t: float
    value: float               # the windowed statistic at transition
    threshold: float           # what it was compared against


class _Monitor:
    """Shared two-state (quiet/firing) sliding-window machine."""

    __slots__ = ("name", "threshold", "window_s", "firing", "alerts",
                 "worst")

    def __init__(self, name: str, threshold: float,
                 window_s: float) -> None:
        self.name = name
        self.threshold = threshold
        self.window_s = window_s
        self.firing = False
        self.alerts = 0          # firing transitions (not resolutions)
        self.worst = 0.0

    def _transition(self, t: float, value: float, violating: bool,
                    out: List[Alert]) -> None:
        if value > self.worst:
            self.worst = value
        if violating and not self.firing:
            self.firing = True
            self.alerts += 1
            out.append(Alert(self.name, "firing", t, value,
                             self.threshold))
        elif not violating and self.firing:
            self.firing = False
            out.append(Alert(self.name, "resolved", t, value,
                             self.threshold))


class _AvailabilityMonitor(_Monitor):
    """Error-budget burn rate over the window.

    ``burn = windowed_error_rate / (1 - target)`` — a burn of 1.0 means
    the budget is being spent exactly as fast as the SLO allows over a
    full compliance period; the monitor fires at ``burn_threshold``.
    """

    __slots__ = ("budget", "_events", "_errors")

    def __init__(self, target: float, burn_threshold: float,
                 window_s: float) -> None:
        super().__init__("availability", burn_threshold, window_s)
        self.budget = 1.0 - target
        self._events: deque = deque()   # (t, ok)
        self._errors = 0

    def observe(self, t: float, ok: bool, out: List[Alert]) -> None:
        events = self._events
        events.append((t, ok))
        if not ok:
            self._errors += 1
        horizon = t - self.window_s
        while events and events[0][0] < horizon:
            _, was_ok = events.popleft()
            if not was_ok:
                self._errors -= 1
        error_rate = self._errors / len(events)
        burn = error_rate / self.budget
        self._transition(t, burn, burn > self.threshold, out)


class _P99Monitor(_Monitor):
    """Windowed nearest-rank p99 latency vs a latency target."""

    __slots__ = ("_events", "_sorted")

    def __init__(self, target_s: float, window_s: float) -> None:
        super().__init__("p99", target_s, window_s)
        self._events: deque = deque()   # (t, latency)
        self._sorted: List[float] = []  # same latencies, kept ordered

    def observe(self, t: float, latency: float,
                out: List[Alert]) -> None:
        events = self._events
        events.append((t, latency))
        insort(self._sorted, latency)
        horizon = t - self.window_s
        while events and events[0][0] < horizon:
            _, old = events.popleft()
            del self._sorted[bisect_left(self._sorted, old)]
        n = len(self._sorted)
        # Nearest-rank percentile, same convention as serving.metrics.
        rank = max(0, -(-99 * n // 100) - 1)
        p99 = self._sorted[rank]
        self._transition(t, p99, p99 > self.threshold, out)


class _ColdRateMonitor(_Monitor):
    """Fraction of completed serves in the window that paid a cold
    start (restores — the mitigation — do not count)."""

    __slots__ = ("_events", "_cold")

    def __init__(self, target: float, window_s: float) -> None:
        super().__init__("cold-rate", target, window_s)
        self._events: deque = deque()   # (t, cold)
        self._cold = 0

    def observe(self, t: float, cold: bool, out: List[Alert]) -> None:
        events = self._events
        events.append((t, cold))
        if cold:
            self._cold += 1
        horizon = t - self.window_s
        while events and events[0][0] < horizon:
            _, was_cold = events.popleft()
            if was_cold:
                self._cold -= 1
        rate = self._cold / len(events)
        self._transition(t, rate, rate > self.threshold, out)


class SLOMonitorSet:
    """The monitors a replay evaluates, built from one policy.

    The replay loop calls :meth:`observe_completed` /
    :meth:`observe_failed` once per finished request, in arrival order;
    each call returns the alerts that observation triggered (usually
    an empty list).  Sheds are intentionally not observed — availability
    here follows the repo-wide shed-adjusted contract
    (``completed / (completed + failed)``).
    """

    def __init__(self, policy: SLOPolicy) -> None:
        self.policy = policy
        self.alerts: List[Alert] = []
        self.observed = 0
        self._availability = _AvailabilityMonitor(
            policy.availability_target, policy.burn_threshold,
            policy.window_s)
        self._p99 = (_P99Monitor(policy.p99_target_s, policy.window_s)
                     if policy.p99_target_s is not None else None)
        self._cold = (_ColdRateMonitor(policy.cold_rate_target,
                                       policy.window_s)
                      if policy.cold_rate_target is not None else None)

    def _monitors(self) -> List[_Monitor]:
        out: List[_Monitor] = [self._availability]
        if self._p99 is not None:
            out.append(self._p99)
        if self._cold is not None:
            out.append(self._cold)
        return out

    def observe_completed(self, t: float, latency: float,
                          cold: bool) -> List[Alert]:
        """One request completed at arrival time ``t``."""
        self.observed += 1
        fresh: List[Alert] = []
        self._availability.observe(t, True, fresh)
        if self._p99 is not None:
            self._p99.observe(t, latency, fresh)
        if self._cold is not None:
            self._cold.observe(t, cold, fresh)
        self.alerts.extend(fresh)
        return fresh

    def observe_failed(self, t: float) -> List[Alert]:
        """One request explicitly failed at arrival time ``t``."""
        self.observed += 1
        fresh: List[Alert] = []
        self._availability.observe(t, False, fresh)
        self.alerts.extend(fresh)
        return fresh

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest: per-monitor verdicts plus the full alert
        stream (the bench report ``monitors`` payload)."""
        monitors: Dict[str, Any] = {}
        for monitor in self._monitors():
            monitors[monitor.name] = {
                "threshold": monitor.threshold,
                "worst": monitor.worst,
                "fired": monitor.alerts,
                "firing": monitor.firing,
            }
        return {
            "window_s": self.policy.window_s,
            "observed": self.observed,
            "monitors": monitors,
            "alerts": [{"monitor": a.monitor, "state": a.state,
                        "t": a.t, "value": a.value,
                        "threshold": a.threshold}
                       for a in self.alerts],
        }


def emit_alert_spans(spans, alerts: List[Alert]) -> None:
    """Mirror alerts into zero-duration ``alert``-category spans.

    One shared emitter keeps the span arguments identical wherever the
    monitors run (serial fleet loop, cluster stepping loop, sharded
    merge replay) — that is what makes the sharded span stream
    byte-identical to serial.
    """
    for alert in alerts:
        spans.event(f"slo:{alert.monitor}", alert.t, actor="slo",
                    category="alert", state=alert.state,
                    value=alert.value, threshold=alert.threshold)


_MONITOR_NAMES = ("availability", "p99", "cold-rate")
_ALERT_STATES = ("firing", "resolved")


def validate_monitors(payload: Any) -> List[str]:
    """Structural validation of one :meth:`SLOMonitorSet.summary` dump
    (the per-cell entries of a bench report ``monitors`` section)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["monitors summary must be an object"]
    window = payload.get("window_s")
    if not isinstance(window, (int, float)) or window <= 0:
        errors.append("window_s must be a positive number")
    observed = payload.get("observed")
    if not isinstance(observed, int) or observed < 0:
        errors.append("observed must be a non-negative integer")
    monitors = payload.get("monitors")
    if not isinstance(monitors, dict) or "availability" not in monitors:
        errors.append("monitors must be an object with at least "
                      "'availability'")
        monitors = {}
    for name, entry in monitors.items():
        where = f"monitor {name!r}"
        if name not in _MONITOR_NAMES:
            errors.append(f"{where}: unknown monitor")
            continue
        if not isinstance(entry, dict):
            errors.append(f"{where}: entry must be an object")
            continue
        for field in ("threshold", "worst"):
            if not isinstance(entry.get(field), (int, float)):
                errors.append(f"{where}: {field} must be a number")
        if not isinstance(entry.get("fired"), int) or entry["fired"] < 0:
            errors.append(f"{where}: fired must be a non-negative "
                          "integer")
        if not isinstance(entry.get("firing"), bool):
            errors.append(f"{where}: firing must be a boolean")
    alerts = payload.get("alerts")
    if not isinstance(alerts, list):
        return errors + ["alerts must be a list"]
    last_t = None
    for i, alert in enumerate(alerts):
        where = f"alert[{i}]"
        if not isinstance(alert, dict):
            errors.append(f"{where}: must be an object")
            continue
        if alert.get("monitor") not in _MONITOR_NAMES:
            errors.append(f"{where}: unknown monitor "
                          f"{alert.get('monitor')!r}")
        if alert.get("state") not in _ALERT_STATES:
            errors.append(f"{where}: unknown state {alert.get('state')!r}")
        t = alert.get("t")
        if not isinstance(t, (int, float)) or t < 0:
            errors.append(f"{where}: t must be a non-negative number")
        elif last_t is not None and t < last_t:
            errors.append(f"{where}: alerts must be time-ordered")
        else:
            last_t = t
    return errors
