"""Chrome/Perfetto ``trace_event`` JSON export for causal spans.

Maps the simulator's telemetry onto the trace-event model that both
``chrome://tracing`` and https://ui.perfetto.dev load natively:

- **pid** = the simulated device (one process per trace; the device
  name appears via a ``process_name`` metadata event),
- **tid** = the actor (host, loader, gpu, server, cluster...), named
  through ``thread_name`` metadata events,
- **"X"** complete events = timed spans (``ts``/``dur`` in integer
  microseconds; span id, parent and attrs ride in ``args``),
- **"s"/"f"** flow events = causal links — Perfetto draws an arrow from
  each LOAD/CHECK span to the EXEC span that waited on it, which is
  exactly the proactive-loading race the paper's Fig. 2 narrates.

Export is deterministic: span ids are already stable (sequential in
creation order), events sort by ``(ts, tid, phase-rank, seq)``, and the
JSON is dumped with sorted keys and no whitespace — two identical runs
produce byte-identical files (pinned by a golden test).

:func:`validate_trace` structurally checks an exported payload —
required keys per event type, monotonic ``ts`` per tid, and matched
flow begin/end pairs — and is used by the CLI's ``--validate`` flag and
the test suite.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

__all__ = ["trace_events", "to_perfetto", "write_trace", "validate_trace",
           "spans_summary"]

_PID = 1
# Deterministic event ordering at equal timestamps: metadata first, then
# flow starts, completes, flow finishes.
_PH_RANK = {"M": 0, "s": 1, "X": 2, "f": 3}


def _micros(seconds: float) -> int:
    """Simulated seconds -> integer microseconds (trace-event unit)."""
    return int(round(seconds * 1_000_000))


def _actor_tids(spans: Sequence[Span]) -> Dict[str, int]:
    """Stable actor -> tid mapping (sorted actor names, tids from 1)."""
    return {actor: i + 1
            for i, actor in enumerate(sorted({s.actor for s in spans}))}


def trace_events(spans: Sequence[Span], device: str = "sim",
                 ) -> List[Dict[str, Any]]:
    """Render spans as a sorted list of trace-event dicts."""
    tids = _actor_tids(spans)
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0, "ts": 0,
        "args": {"name": f"device:{device}"},
    }]
    for actor, tid in tids.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "ts": 0, "args": {"name": actor},
        })

    by_id = {span.span_id: span for span in spans}
    for span in spans:
        tid = tids[span.actor]
        ts = _micros(span.start)
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs:
            args[str(key)] = value
        events.append({
            "ph": "X", "name": span.name or span.category,
            "cat": span.category, "pid": _PID, "tid": tid,
            "ts": ts, "dur": max(_micros(span.end) - ts, 0),
            "args": args,
        })
        # One flow arrow per causal link: starts at the *end* of the
        # source span (the load/check completing), binds to the
        # enclosing slice at the consumer ("bp": "e").
        for src_id in span.links:
            src = by_id.get(src_id)
            if src is None:
                continue
            flow_id = f"{src_id}-{span.span_id}"
            events.append({
                "ph": "s", "name": "waited-on", "cat": "link",
                "id": flow_id, "pid": _PID, "tid": tids[src.actor],
                "ts": _micros(src.end),
            })
            events.append({
                "ph": "f", "name": "waited-on", "cat": "link",
                "id": flow_id, "pid": _PID, "tid": tid,
                "ts": ts, "bp": "e",
            })

    order = {id(e): i for i, e in enumerate(events)}
    events.sort(key=lambda e: (e["ts"], e["tid"],
                               _PH_RANK.get(e["ph"], 9), order[id(e)]))
    return events


def to_perfetto(spans: Sequence[Span], device: str = "sim",
                metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Full trace JSON payload (``traceEvents`` + display unit)."""
    payload: Dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events(spans, device=device),
    }
    if metadata:
        payload["metadata"] = {k: metadata[k] for k in sorted(metadata)}
    return payload


def write_trace(path: str, spans: Sequence[Span], device: str = "sim",
                metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write the trace JSON to ``path`` deterministically; returns it."""
    payload = to_perfetto(spans, device=device, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return payload


def validate_trace(payload: Any) -> List[str]:
    """Structural validation of a trace-event payload.

    Returns a list of problems (empty = valid): required keys per event
    type, non-negative integer ``ts``/``dur``, monotonically
    non-decreasing ``ts`` per tid over sortable events, and every flow
    id appearing as exactly one matched ``s``/``f`` pair.
    """
    errors: List[str] = []
    if not isinstance(payload, dict) or not isinstance(
            payload.get("traceEvents"), list):
        return ["payload must be an object with a traceEvents list"]
    last_ts: Dict[Any, int] = {}
    flows: Dict[str, List[str]] = {}
    for i, event in enumerate(payload["traceEvents"]):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        for key in ("ph", "pid", "tid", "ts"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if not isinstance(event.get("ts"), int) or event.get("ts", 0) < 0:
            errors.append(f"{where}: ts must be a non-negative integer")
            continue
        if ph == "X":
            if "name" not in event:
                errors.append(f"{where}: X event missing name")
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: X event needs integer dur >= 0")
        elif ph in ("s", "f"):
            flow_id = event.get("id")
            if not isinstance(flow_id, str):
                errors.append(f"{where}: flow event missing id")
            else:
                flows.setdefault(flow_id, []).append(ph)
            if ph == "f" and event.get("bp") != "e":
                errors.append(f"{where}: flow finish must bind "
                              "to enclosing slice (bp='e')")
        elif ph != "M":
            errors.append(f"{where}: unknown event type {ph!r}")
        tid = event.get("tid")
        ts = event["ts"]
        if ph != "M" and tid is not None:
            if ts < last_ts.get(tid, 0):
                errors.append(
                    f"{where}: ts goes backwards on tid {tid}")
            else:
                last_ts[tid] = ts
    for flow_id in sorted(flows):
        phases = sorted(flows[flow_id])
        if phases != ["f", "s"]:
            errors.append(
                f"flow {flow_id!r}: expected one matched s/f pair, "
                f"got {phases}")
    return errors


def spans_summary(spans: Iterable[Span]) -> Dict[str, int]:
    """Event counts per category — a cheap sanity line for the CLI."""
    out: Dict[str, int] = {}
    for span in spans:
        out[span.category] = out.get(span.category, 0) + 1
    return {k: out[k] for k in sorted(out)}
