"""The pack fetch hierarchy: local disk -> peer -> origin -> cold load.

:class:`PackPolicy` is the immutable configuration of the hierarchy —
one :class:`TierPolicy` (modeled bandwidth, connection latency, per
attempt timeout, retry/backoff budget) per tier plus the verify and
apply cost constants.  :class:`PackStoreState` is the per-replay
mutable cursor: every cold spawn asks it to :meth:`~PackStoreState.fetch`
the pack, and the store walks the ladder deterministically —

1. **local** — the store's disk cache, populated by the first verified
   fetch (a miss costs nothing: the index lookup is free);
2. **peer**  — another warm instance in the same pool exporting its
   registry (available whenever one exists, dark during peer-churn
   windows);
3. **origin** — the registry (always indexed, but dark during
   registry-outage windows; fleets fail over to another region's
   registry at a cross-region penalty);
4. **cold**  — the degradation floor: the full cold load, after the
   ladder burnt its (bounded) retry budget.

Every hop is integrity-verified (``pack.verify`` fault site) and every
attempt draws its failure from the replay's
:class:`~repro.sim.faults.FaultInjector` at the ``pack.fetch.{tier}``
sites, so the full fetch/fallback sequence is a pure function of the
fault-plan seed.  Byte accounting is conserved by construction and
property-pinned: every fetched byte is exactly one of verified,
discarded-corrupt, or abandoned-on-timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from repro.packs.artifact import KernelPack
from repro.sim.faults import FaultInjector
from repro.sim.trace import Phase, TraceRecorder

__all__ = ["TierPolicy", "PackPolicy", "PackTransferCounters",
           "PackFetchResult", "PackStoreState", "RegistryFabric",
           "PACK_TIERS", "feed_pack_metrics"]

PACK_TIERS = ("local", "peer", "origin")


@dataclass(frozen=True)
class TierPolicy:
    """Transfer cost and retry budget of one hierarchy tier."""

    bandwidth_bps: float          # modeled payload bandwidth
    latency_s: float              # connection setup cost per attempt
    timeout_s: float              # per-attempt transfer ceiling
    max_attempts: int = 2         # attempts before falling to next tier
    backoff_base_s: float = 500e-6  # doubles per retry

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        for name in ("latency_s", "timeout_s", "backoff_base_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class PackPolicy:
    """Immutable configuration of the pack fetch hierarchy.

    Defaults are calibrated against the repo's device constants (a
    ~1 MB PASK pack, ~14 ms cold-start extra): a local hit costs ~1 ms,
    a peer hit ~2 ms, an origin hit ~7 ms — every tier beats the cold
    load it replaces, and the degraded ladder (all tiers dark) adds
    only the bounded retry latencies before the cold fallback.
    ``None`` — not an inert instance of this class — is the disabled
    state; attaching any policy activates the hierarchy.
    """

    local: TierPolicy = TierPolicy(bandwidth_bps=2e9, latency_s=200e-6,
                                   timeout_s=0.25)
    peer: TierPolicy = TierPolicy(bandwidth_bps=1e9, latency_s=500e-6,
                                  timeout_s=0.25)
    origin: TierPolicy = TierPolicy(bandwidth_bps=250e6, latency_s=2e-3,
                                    timeout_s=0.5, max_attempts=3)
    verify_bps: float = 8e9       # digest check bandwidth, every hop
    apply_overhead_s: float = 500e-6  # map-in + permission pass
    apply_bps: float = 2e9        # unpack/apply bandwidth
    # Failover fetches from another region's registry pay this factor
    # on origin latency and 1/bandwidth (one attempt, no retries).
    cross_region_penalty: float = 3.0

    def __post_init__(self) -> None:
        for name in ("verify_bps", "apply_bps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.apply_overhead_s < 0:
            raise ValueError("apply_overhead_s must be non-negative")
        if self.cross_region_penalty < 1.0:
            raise ValueError("cross_region_penalty must be >= 1")

    def tier(self, name: str) -> TierPolicy:
        if name not in PACK_TIERS:
            raise ValueError(f"unknown pack tier {name!r}")
        return getattr(self, name)

    def apply_s(self, size_bytes: int) -> float:
        """Seconds to apply a verified pack to a fresh instance."""
        return self.apply_overhead_s + size_bytes / self.apply_bps

    def failover_origin(self) -> TierPolicy:
        """The origin tier as seen across regions: penalized latency
        and bandwidth, single attempt (the ladder already burnt the
        local retry budget against its own registry)."""
        origin = self.origin
        return TierPolicy(
            bandwidth_bps=origin.bandwidth_bps / self.cross_region_penalty,
            latency_s=origin.latency_s * self.cross_region_penalty,
            timeout_s=origin.timeout_s,
            max_attempts=1,
            backoff_base_s=origin.backoff_base_s)


@dataclass
class PackTransferCounters:
    """What the fetch hierarchy actually did during one replay.

    Byte conservation (property-pinned): ``bytes_fetched ==
    bytes_verified + bytes_discarded + bytes_abandoned`` — every byte
    that moved was verified-and-applied, discarded as corrupt, or
    abandoned when its transfer hit the tier timeout.
    """

    local_hits: int = 0       # serves restored from the disk cache
    peer_hits: int = 0        # ... from a warm peer instance
    origin_hits: int = 0      # ... from the (region-local) registry
    failover_hits: int = 0    # ... from another region's registry
    degraded_cold: int = 0    # ladder exhausted; full cold load taken
    local_faults: int = 0     # failed fetch attempts per tier
    peer_faults: int = 0
    origin_faults: int = 0
    local_timeouts: int = 0   # attempts abandoned at the tier timeout
    peer_timeouts: int = 0
    origin_timeouts: int = 0
    local_corrupt: int = 0    # digest mismatches per tier
    peer_corrupt: int = 0
    origin_corrupt: int = 0
    retries: int = 0          # backoff retries within a tier
    local_bytes: int = 0      # bytes fetched per tier (incl. partial)
    peer_bytes: int = 0
    origin_bytes: int = 0
    bytes_verified: int = 0
    bytes_discarded: int = 0  # fetched in full, failed the digest check
    bytes_abandoned: int = 0  # partial transfer cut off by the timeout

    @property
    def bytes_fetched(self) -> int:
        """Total bytes moved across every tier."""
        return self.local_bytes + self.peer_bytes + self.origin_bytes

    @property
    def pack_restores(self) -> int:
        """Serves the hierarchy saved from a full cold load."""
        return (self.local_hits + self.peer_hits + self.origin_hits
                + self.failover_hits)

    @property
    def conserved(self) -> bool:
        """The byte-accounting invariant."""
        return self.bytes_fetched == (self.bytes_verified
                                      + self.bytes_discarded
                                      + self.bytes_abandoned)

    def merge(self, other: "PackTransferCounters") -> None:
        """Accumulate ``other`` into this counter set."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports and assertions)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class PackFetchResult:
    """Outcome of one walk down the ladder.

    ``tier`` is where the pack came from (``"local"``/``"peer"``/
    ``"origin"``/``"failover"``) or ``"cold"`` when the ladder
    degraded.  ``elapsed_s`` is the simulated time the walk consumed —
    fetch, verify, retries and backoffs included, apply excluded (the
    caller bills :meth:`PackPolicy.apply_s` on a hit).
    """

    tier: str
    elapsed_s: float

    @property
    def hit(self) -> bool:
        return self.tier != "cold"


class RegistryFabric:
    """Which region registries are lit, for cross-region failover.

    Holds the outage windows of every region's fault plan (an empty
    tuple for regions without one).  ``lit_registry`` returns the
    first *other* region, in config order, whose registry is not dark
    at ``t`` — deterministic, so failover adds no randomness beyond
    the fetch draw itself.
    """

    def __init__(self, outage_windows: List[Tuple[Tuple[float, float],
                                                  ...]]) -> None:
        self._windows = outage_windows

    def _dark(self, index: int, t: float) -> bool:
        return any(start <= t < end for start, end in self._windows[index])

    def lit_registry(self, own_index: int, t: float) -> Optional[int]:
        for index in range(len(self._windows)):
            if index != own_index and not self._dark(index, t):
                return index
        return None


class PackStoreState:
    """Per-replay cursor of one pool's pack store.

    All randomness flows through the replay's injector at the
    ``pack.fetch.*`` / ``pack.verify`` sites; all costs are modeled
    from the policy, so the fetch/fallback sequence is a pure function
    of ``(plan seed, visit order)``.  Without an injector the
    hierarchy runs fault-free (fetches never fail, packs never
    corrupt) but still bills transfer time.
    """

    def __init__(self, policy: PackPolicy, pack: KernelPack,
                 injector: Optional[FaultInjector],
                 recorder: Optional[TraceRecorder] = None,
                 actor: str = "cluster",
                 region_index: int = 0,
                 fabric: Optional[RegistryFabric] = None) -> None:
        self.policy = policy
        self.pack = pack
        self.injector = injector
        self.recorder = recorder
        self.actor = actor
        self.region_index = region_index
        self.fabric = fabric
        self.counters = PackTransferCounters()
        self.local_cached = False  # set by the first verified fetch
        self.apply_s = policy.apply_s(pack.size_bytes)

    # -- counter plumbing ---------------------------------------------

    def _bump(self, name: str, value: int = 1) -> None:
        setattr(self.counters, name, getattr(self.counters, name) + value)

    def _fetch_fails(self, tier: str, now: float,
                     windowed: bool) -> bool:
        if self.injector is None:
            return False
        return self.injector.pack_fetch_fails(tier, now,
                                              windowed=windowed)

    def _verify_fails(self) -> bool:
        if self.injector is None:
            return False
        return self.injector.pack_verify_fails()

    # -- one tier ------------------------------------------------------

    def _try_tier(self, tier: str, tier_policy: TierPolicy,
                  t: float, windowed: bool = True) -> Tuple[bool, float]:
        """Attempt ``tier`` under ``tier_policy`` starting at ``t``.

        Returns ``(hit, t_after)``.  Connection-level failures (seeded
        draws and forced window failures) are detected after the
        tier's latency and move no payload bytes; a transfer that
        cannot finish inside the timeout is deterministic for every
        retry, so its partial bytes are abandoned once and the tier is
        skipped; a completed transfer is digest-checked — a mismatch
        discards the whole pack and retries the tier.
        """
        size = self.pack.size_bytes
        transfer = tier_policy.latency_s + size / tier_policy.bandwidth_bps
        recorder = self.recorder
        for attempt in range(1, tier_policy.max_attempts + 1):
            if transfer > tier_policy.timeout_s:
                window = max(0.0,
                             tier_policy.timeout_s - tier_policy.latency_s)
                moved = min(size, int(tier_policy.bandwidth_bps * window))
                self._bump(f"{tier}_timeouts")
                self._bump(f"{tier}_bytes", moved)
                self._bump("bytes_abandoned", moved)
                if recorder is not None:
                    recorder.record(t, t + tier_policy.timeout_s,
                                    self.actor, Phase.FAULT,
                                    f"pack-timeout/{tier}")
                return False, t + tier_policy.timeout_s
            if self._fetch_fails(tier, t, windowed):
                self._bump(f"{tier}_faults")
                if recorder is not None:
                    recorder.record(t, t + tier_policy.latency_s,
                                    self.actor, Phase.FAULT,
                                    f"pack-fetch/{tier}")
                t += tier_policy.latency_s
            else:
                fetched = t + transfer
                verified = fetched + size / self.policy.verify_bps
                self._bump(f"{tier}_bytes", size)
                if self._verify_fails():
                    self._bump(f"{tier}_corrupt")
                    self._bump("bytes_discarded", size)
                    if recorder is not None:
                        recorder.record(t, verified, self.actor,
                                        Phase.FAULT,
                                        f"pack-corrupt/{tier}")
                    t = verified
                else:
                    self._bump("bytes_verified", size)
                    return True, verified
            if attempt < tier_policy.max_attempts:
                backoff = tier_policy.backoff_base_s * (2 ** (attempt - 1))
                self._bump("retries")
                if recorder is not None:
                    recorder.record(t, t + backoff, self.actor,
                                    Phase.RETRY, f"pack-backoff/{tier}")
                t += backoff
        return False, t

    # -- the ladder ----------------------------------------------------

    def fetch(self, now: float, peer_available: bool) -> PackFetchResult:
        """Walk the ladder once, starting at simulated time ``now``.

        ``peer_available`` — whether another warm instance exists in
        the pool (any warm instance can export its registry as the
        pack, however it was warmed).  A hit populates the local disk
        cache, so subsequent spawns in this pool start at the local
        tier.
        """
        policy = self.policy
        t = now
        if self.local_cached:
            hit, t = self._try_tier("local", policy.local, t)
            if hit:
                self._bump("local_hits")
                return PackFetchResult("local", t - now)
        if peer_available:
            hit, t = self._try_tier("peer", policy.peer, t)
            if hit:
                self._bump("peer_hits")
                self.local_cached = True
                return PackFetchResult("peer", t - now)
        hit, t = self._try_tier("origin", policy.origin, t)
        if hit:
            self._bump("origin_hits")
            self.local_cached = True
            return PackFetchResult("origin", t - now)
        if self.fabric is not None:
            remote = self.fabric.lit_registry(self.region_index, t)
            if remote is not None:
                # The fabric already checked the remote registry is
                # lit, so the own region's outage window must not
                # force-fail this attempt.
                hit, t = self._try_tier("origin",
                                        policy.failover_origin(), t,
                                        windowed=False)
                if hit:
                    self._bump("failover_hits")
                    self.local_cached = True
                    return PackFetchResult("failover", t - now)
        self._bump("degraded_cold")
        return PackFetchResult("cold", t - now)


def feed_pack_metrics(registry, counters: PackTransferCounters,
                      **labels) -> None:
    """Feed one store's counters into a metrics registry.

    The fed-at-the-end pattern the cluster and fleet layers use:
    ``pack_fetch_total{tier, outcome}`` (hit/fault/timeout/corrupt per
    tier, plus ``failover``/``cold`` rows) and ``pack_bytes_total
    {tier}``.  Extra ``labels`` (scheme, region) ride along on every
    sample.
    """
    fetches = registry.counter("pack_fetch_total",
                               "Pack fetches by tier and outcome")
    moved = registry.counter("pack_bytes_total",
                             "Pack bytes transferred by tier")
    for tier in PACK_TIERS:
        for outcome, suffix in (("hit", "hits"), ("fault", "faults"),
                                ("timeout", "timeouts"),
                                ("corrupt", "corrupt")):
            value = getattr(counters, f"{tier}_{suffix}")
            if value:
                fetches.inc(value, tier=tier, outcome=outcome, **labels)
        value = getattr(counters, f"{tier}_bytes")
        if value:
            moved.inc(value, tier=tier, **labels)
    if counters.failover_hits:
        fetches.inc(counters.failover_hits, tier="failover",
                    outcome="hit", **labels)
    if counters.degraded_cold:
        fetches.inc(counters.degraded_cold, tier="cold",
                    outcome="degraded", **labels)
