"""Content-addressed kernel packs and their fetch hierarchy.

:mod:`repro.packs.artifact` derives the distributable artifact from a
runtime snapshot; :mod:`repro.packs.store` models fetching it through
the local-disk -> peer -> origin hierarchy with seeded faults and a
cold-load degradation floor.  See ``docs/PACKS.md``.
"""

from repro.packs.artifact import (KernelPack, pack_digest,
                                  pack_from_snapshot, pack_for)
from repro.packs.store import (PACK_TIERS, PackFetchResult, PackPolicy,
                               PackStoreState, PackTransferCounters,
                               RegistryFabric, TierPolicy,
                               feed_pack_metrics)

__all__ = ["KernelPack", "pack_digest", "pack_from_snapshot", "pack_for",
           "TierPolicy", "PackPolicy", "PackTransferCounters",
           "PackFetchResult", "PackStoreState", "RegistryFabric",
           "PACK_TIERS", "feed_pack_metrics"]
