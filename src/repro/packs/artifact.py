"""Content-addressed kernel packs.

A :class:`KernelPack` is the distributable form of a warm instance's
loaded-code-object registry: the module set a
:class:`~repro.gpu.runtime.RuntimeSnapshot` captured, plus the device
calibration constants the snapshot's timings were derived under.  Its
identity is a deterministic blake2b digest over that content — two
instances that loaded the same modules on the same calibration produce
the *same* pack, which is what makes the artifact cacheable across a
fleet (local disk, peer instances, origin registry) without any
coordination.

Packs are pure metadata here: the simulation never moves real bytes,
so the pack records the byte count and module inventory the transfer
cost model (:mod:`repro.packs.store`) needs, and the digest every
fetch hop re-verifies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple
from weakref import WeakKeyDictionary

from repro.core.schemes import Scheme
from repro.gpu.device import DeviceSpec
from repro.gpu.runtime import RuntimeSnapshot

__all__ = ["KernelPack", "pack_digest", "pack_from_snapshot", "pack_for"]

_DIGEST_SIZE = 16  # 128-bit content address, plenty for a simulation


@dataclass(frozen=True)
class KernelPack:
    """One content-addressed warm-state artifact.

    ``modules`` is the sorted ``(name, size_bytes, symbol_count)``
    inventory; ``constants`` the sorted calibration constants of the
    device the snapshot was taken on.  ``digest`` is the blake2b
    content address over both (see :func:`pack_digest`).
    """

    digest: str
    size_bytes: int
    modules: Tuple[Tuple[str, int, int], ...]
    constants: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("pack size must be non-negative")
        if not self.digest:
            raise ValueError("pack needs a digest")

    def __len__(self) -> int:
        return len(self.modules)


def _calibration_constants(device: DeviceSpec) -> Tuple[Tuple[str, float],
                                                        ...]:
    """The host-runtime cost constants a pack's timings depend on.

    A pack restored onto a device calibrated differently would replay
    the wrong cost model, so the constants are part of the content
    address: recalibrating a device changes every pack digest, exactly
    like changing a module does.
    """
    return (
        ("code_io_bandwidth_mbps", device.code_io_bandwidth_mbps),
        ("code_load_base_s", device.code_load_base_s),
        ("kernel_launch_overhead_s", device.kernel_launch_overhead_s),
        ("mem_protect_s", device.mem_protect_s),
        ("reactive_load_penalty", device.reactive_load_penalty),
        ("symbol_resolve_s", device.symbol_resolve_s),
    )


def pack_digest(modules: Tuple[Tuple[str, int, int], ...],
                constants: Tuple[Tuple[str, float], ...]) -> str:
    """Deterministic blake2b content address of a pack.

    The encoding is canonical: module and constant tuples are sorted by
    the caller, floats are encoded via ``repr`` (which round-trips
    bit-for-bit), and fields are length-delimited by the tuple
    structure itself — so equal content always hashes equal and any
    difference (a module, a byte, a constant) changes the digest.
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for name, size, symbols in modules:
        hasher.update(f"m:{name}:{size}:{symbols};".encode())
    for name, value in constants:
        hasher.update(f"c:{name}:{value!r};".encode())
    return hasher.hexdigest()


def pack_from_snapshot(snapshot: RuntimeSnapshot,
                       device: DeviceSpec) -> KernelPack:
    """Derive the content-addressed pack of a runtime snapshot."""
    modules = tuple(sorted(
        (co.name, co.size_bytes, len(symbols))
        for co, symbols in snapshot.entries))
    constants = _calibration_constants(device)
    return KernelPack(digest=pack_digest(modules, constants),
                      size_bytes=snapshot.size_bytes,
                      modules=modules,
                      constants=constants)


# Per-server pack memo, mirroring the cluster layer's service-time memo:
# building a pack replays one cold serve plus a snapshot, so every
# (scheme, model, batch) pays that exactly once per process.  Packs are
# derived fault-free (fetch faults are injected at the store layer), so
# sharing across fault plans is sound.
_PACKS: "WeakKeyDictionary" = WeakKeyDictionary()


def pack_for(server, model: str, scheme: Scheme,
             batch: int = 1) -> KernelPack:
    """The kernel pack a warm ``(scheme, model, batch)`` instance on
    ``server`` would publish, derived from ``HipRuntime.snapshot()``
    via :meth:`~repro.serving.server.InferenceServer.capture_snapshot`
    and memoized per server."""
    try:
        memo: Dict[Tuple, KernelPack] = _PACKS.setdefault(server, {})
    except TypeError:  # non-weakref-able server stand-in (tests)
        memo = {}
    key = (scheme, model, batch)
    if key not in memo:
        _, snapshot = server.capture_snapshot(model, scheme, batch)
        if snapshot is None:  # pragma: no cover - fault-free capture
            raise RuntimeError("fault-free snapshot capture failed")
        memo[key] = pack_from_snapshot(snapshot, server.device)
    return memo[key]
