"""Deterministic fault injection for the serving stack.

Production serving adds *failure* on top of the paper's happy path:
code-object loads that error, kernel launches that bounce, loader
threads that stall, instances that die mid-cold-start.  This module
provides the seeded, reproducible substrate for injecting those faults
into the deterministic simulation:

- :class:`FaultPlan` is an immutable, seeded description of *what* can
  go wrong and how often.  An all-default plan injects nothing and is
  guaranteed to leave the simulation byte-identical to a run without
  any plan at all (the golden regression tests pin this).
- :class:`FaultInjector` is the per-run mutable cursor over a plan.
  Components consult it at *named injection points* (see
  ``docs/FAULTS.md``); every decision is a pure function of
  ``(seed, site, draw-index)``, so two runs with the same plan produce
  identical fault sequences, identical traces and identical results.
- :class:`FaultCounters` aggregates what actually happened (faults,
  retries, fallbacks, reroutes, ...) so experiments can report
  robustness metrics alongside latency.

Faults surface as :class:`FaultError` subclasses after the built-in
mitigation (retry with exponential backoff, proactive-to-reactive
fallback, request rerouting) is exhausted.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional, Tuple

__all__ = [
    "FaultError",
    "LoadFault",
    "LaunchFault",
    "InstanceCrash",
    "CheckpointFault",
    "RestoreFault",
    "PackFetchFault",
    "PackVerifyFault",
    "FaultPlan",
    "FaultInjector",
    "FaultCounters",
]


class FaultError(Exception):
    """Base class for injected faults that escaped mitigation."""


class LoadFault(FaultError):
    """A code-object load failed after all retry attempts."""


class LaunchFault(FaultError):
    """A kernel launch failed after all retry attempts."""


class InstanceCrash(FaultError):
    """A serving instance died while processing a request."""


class CheckpointFault(FaultError):
    """A warm-state checkpoint was corrupted on write (detected at
    restore time, when the checksum of the read-back image fails)."""


class RestoreFault(FaultError):
    """Restoring a warm-state checkpoint failed; the instance must fall
    back to a full cold start."""


class PackFetchFault(FaultError):
    """A kernel-pack fetch failed at every tier of the hierarchy; the
    instance must fall back to a full cold load."""


class PackVerifyFault(FaultError):
    """A fetched kernel pack failed its integrity check (digest
    mismatch); the transferred bytes are discarded."""


def _in_windows(windows: Tuple[Tuple[float, float], ...],
                t: float) -> bool:
    """Whether ``t`` falls inside any half-open ``[start, end)`` window."""
    return any(start <= t < end for start, end in windows)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, immutable description of the faults to inject.

    All rates are probabilities in ``[0, 1]`` evaluated independently at
    each visit of the corresponding injection point.  The default plan
    is *all-zero*: it consumes no randomness, adds no simulated time and
    no trace records, so threading it through the stack is exactly
    equivalent to running without fault injection.
    """

    seed: int = 0
    # --- runtime.module_load: transient code-object load failures ----
    load_failure_rate: float = 0.0
    max_load_attempts: int = 4
    load_backoff_base_s: float = 100e-6   # doubles per retry
    # Fraction of the load time spent before the failure is detected.
    load_failure_progress: float = 0.5
    # --- runtime.launch_kernel: transient launch errors --------------
    launch_failure_rate: float = 0.0
    max_launch_attempts: int = 3
    # --- stream.enqueue: device-side execution stalls -----------------
    exec_stall_rate: float = 0.0
    exec_stall_s: float = 0.0
    # --- pask.loader: loader-thread stalls + timeout fallback ---------
    loader_stall_rate: float = 0.0
    loader_stall_s: float = 0.0
    # A proactive load whose injected stall exceeds this budget is
    # abandoned: the loader waits only ``load_timeout_s`` and hands the
    # layer to the reactive (lazy launch-path) fallback instead.
    load_timeout_s: Optional[float] = None
    # --- cluster.request: instance crash/restart under traffic --------
    crash_rate: float = 0.0
    restart_delay_s: float = 0.05
    max_reroutes: int = 3
    # --- checkpoint.write: warm-state checkpoint corruption -----------
    # A corrupted checkpoint is written silently; the damage surfaces
    # only at restore time, when the instance falls back to an older
    # checkpoint (or a full cold start).
    checkpoint_corruption_rate: float = 0.0
    # --- restore.load: warm-state restore failures --------------------
    restore_failure_rate: float = 0.0
    # --- pack.fetch.*: kernel-pack transfer failures (repro.packs) ----
    # One rate per hierarchy tier, evaluated per fetch attempt at the
    # ``pack.fetch.{local,peer,origin}`` injection points.
    pack_local_failure_rate: float = 0.0
    pack_peer_failure_rate: float = 0.0
    pack_origin_failure_rate: float = 0.0
    # --- pack.verify: integrity-check failures on fetched packs -------
    # A corrupted transfer is detected by the digest check after the
    # bytes moved; the pack is discarded and the tier retried.
    pack_corruption_rate: float = 0.0
    # Interval-scoped half-open ``[start, end)`` windows.  While a
    # registry-outage window is open every origin fetch is forced to
    # fail (the registry is dark); while a peer-churn window is open
    # every peer fetch fails (the peers are being recycled).  Forced
    # failures consume no draws, so the seeded sequences at the pack
    # sites are independent of the windows.
    registry_outage_windows: Tuple[Tuple[float, float], ...] = ()
    peer_churn_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("load_failure_rate", "launch_failure_rate",
                     "exec_stall_rate", "loader_stall_rate", "crash_rate",
                     "load_failure_progress", "checkpoint_corruption_rate",
                     "restore_failure_rate", "pack_local_failure_rate",
                     "pack_peer_failure_rate", "pack_origin_failure_rate",
                     "pack_corruption_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("max_load_attempts", "max_launch_attempts"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("load_backoff_base_s", "exec_stall_s",
                     "loader_stall_s", "restart_delay_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.load_timeout_s is not None and self.load_timeout_s < 0:
            raise ValueError("load_timeout_s must be non-negative")
        if self.max_reroutes < 0:
            raise ValueError("max_reroutes must be non-negative")
        for name in ("registry_outage_windows", "peer_churn_windows"):
            for window in getattr(self, name):
                if (len(window) != 2 or window[0] < 0
                        or window[1] <= window[0]):
                    raise ValueError(f"bad {name} window {window!r}; "
                                     "need 0 <= start < end")

    @property
    def is_zero(self) -> bool:
        """Whether this plan can never inject anything."""
        return (self.load_failure_rate == 0.0
                and self.launch_failure_rate == 0.0
                and self.exec_stall_rate == 0.0
                and self.loader_stall_rate == 0.0
                and self.crash_rate == 0.0
                and self.checkpoint_corruption_rate == 0.0
                and self.restore_failure_rate == 0.0
                and self.pack_local_failure_rate == 0.0
                and self.pack_peer_failure_rate == 0.0
                and self.pack_origin_failure_rate == 0.0
                and self.pack_corruption_rate == 0.0
                and not self.registry_outage_windows
                and not self.peer_churn_windows)

    def digest(self, size: int = 4) -> str:
        """Short stable hex digest of the plan.

        Used to disambiguate report cell ids when two tasks differ only
        in their fault plans (e.g. the legs of ``repro chaos --packs``).
        """
        payload = repr(sorted(asdict(self).items()))
        return hashlib.blake2b(payload.encode("utf-8"),
                               digest_size=size).hexdigest()

    def injector(self) -> "FaultInjector":
        """A fresh per-run cursor over this plan."""
        return FaultInjector(self)


@dataclass
class FaultCounters:
    """What the fault layer actually did during one run."""

    load_faults: int = 0        # failed load attempts
    load_retries: int = 0       # backoff retries after a load fault
    launch_faults: int = 0      # failed launch attempts
    launch_retries: int = 0     # re-issues after a launch fault
    exec_stalls: int = 0        # device-side stalls
    loader_stalls: int = 0      # loader-thread stalls (waited out)
    fallbacks: int = 0          # proactive loads abandoned to reactive path
    crashes: int = 0            # instance crashes mid-request
    reroutes: int = 0           # requests rerouted after a crash
    completed_requests: int = 0
    failed_requests: int = 0    # requests explicitly failed (reroute budget)
    # Resilience layer (repro.serving.resilience): what the policy did.
    shed_requests: int = 0      # requests rejected by admission control
    breaker_opens: int = 0      # circuit-breaker CLOSED/HALF_OPEN -> OPEN
    breaker_probes: int = 0     # half-open probe requests routed
    warm_restores: int = 0      # post-crash restarts restored from checkpoint
    restore_failures: int = 0   # restores that failed (fell back to cold)
    checkpoint_corruptions: int = 0  # corrupted checkpoints skipped/detected
    drains: int = 0             # graceful supervised drain/restart cycles
    degraded_requests: int = 0  # cold serves taken in reactive degraded mode

    @property
    def retries(self) -> int:
        """Total retry actions (load backoffs + launch re-issues)."""
        return self.load_retries + self.launch_retries

    @property
    def availability(self) -> float:
        """Fraction of finished requests that completed successfully."""
        finished = self.completed_requests + self.failed_requests
        if finished == 0:
            return 1.0
        return self.completed_requests / finished

    def merge(self, other: "FaultCounters") -> None:
        """Accumulate ``other`` into this counter set."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports and assertions)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Per-run cursor over a :class:`FaultPlan`.

    Each named injection point keeps its own draw counter, so the
    decision sequence at one site is independent of how often other
    sites are visited -- adding an injection point to one component
    never perturbs the faults another component sees.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._draws: Dict[str, int] = {}
        self._m_faults = None

    def bind_metrics(self, metrics) -> None:
        """Count injected faults per site in a metrics registry
        (:class:`repro.obs.metrics.MetricsRegistry`).  Counting never
        consumes randomness, so binding leaves the fault sequence — and
        therefore the simulation — unchanged."""
        self._m_faults = metrics.counter(
            "faults_injected_total", "Injected faults by site")

    def roll(self, site: str) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for ``site``."""
        index = self._draws.get(site, 0)
        self._draws[site] = index + 1
        payload = f"{self.plan.seed}:{site}:{index}".encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def should_fail(self, site: str, rate: float) -> bool:
        """Whether the visit at ``site`` faults (no draw when rate is 0)."""
        if rate <= 0.0:
            return False
        failed = self.roll(site) < rate
        if failed and self._m_faults is not None:
            self._m_faults.inc(site=site)
        return failed

    def preview_failures(self, site: str, rate: float, limit: int) -> int:
        """Length of the surviving-draw run ahead of the cursor.

        Counts how many consecutive :meth:`should_fail` visits at
        ``site`` would return ``False`` starting from the current draw
        index, capped at ``limit`` — without consuming anything.  A
        zero rate never draws, so the whole window survives.  This is
        what lets a replay fast-forward *between* pre-sampled fault
        sites: the caller processes that many visits analytically, then
        :meth:`advance` the cursor past their (surviving) draws.
        """
        if limit <= 0:
            return 0
        if rate <= 0.0:
            return limit
        index = self._draws.get(site, 0)
        seed = self.plan.seed
        blake2b = hashlib.blake2b
        count = 0
        while count < limit:
            payload = f"{seed}:{site}:{index + count}".encode()
            digest = blake2b(payload, digest_size=8).digest()
            if int.from_bytes(digest, "big") / 2**64 < rate:
                break
            count += 1
        return count

    def advance(self, site: str, count: int) -> None:
        """Consume ``count`` draws at ``site`` in bulk.

        Only sound for draws :meth:`preview_failures` proved surviving:
        a surviving draw has no side effect beyond moving the cursor
        (fault metrics count failures only), so skipping the hashes
        leaves the downstream fault sequence byte-identical.
        """
        if count > 0:
            self._draws[site] = self._draws.get(site, 0) + count

    # ------------------------------------------------------------------
    # Site-specific helpers (the named injection points)
    # ------------------------------------------------------------------
    def load_fails(self) -> bool:
        """``runtime.module_load``: does this load attempt fault?"""
        return self.should_fail("runtime.module_load",
                                self.plan.load_failure_rate)

    def launch_fails(self) -> bool:
        """``runtime.launch_kernel``: does this launch attempt fault?"""
        return self.should_fail("runtime.launch_kernel",
                                self.plan.launch_failure_rate)

    def exec_stall(self) -> float:
        """``stream.enqueue``: seconds of device-side stall (0 = none)."""
        if self.should_fail("stream.enqueue", self.plan.exec_stall_rate):
            return self.plan.exec_stall_s
        return 0.0

    def loader_stall(self) -> float:
        """``pask.loader``: seconds the loader thread stalls (0 = none)."""
        if self.should_fail("pask.loader", self.plan.loader_stall_rate):
            return self.plan.loader_stall_s
        return 0.0

    def crash_point(self, service_time: float) -> Optional[float]:
        """``cluster.request``: seconds into the request the instance
        crashes, or ``None`` when it survives.

        Crash-boundary semantics (pinned by tests): a crash happens
        *strictly before* the request completes, so the returned point
        is always in ``[0, service_time)`` -- ``0`` kills the request
        the instant it starts, while a request whose service already
        elapsed (``crash_at == service_time``) has completed and cannot
        be crashed retroactively.  A zero-length request therefore never
        crashes; the ``cluster.request`` draw is still consumed so the
        fault sequence seen by later requests does not depend on
        service times.
        """
        if not self.should_fail("cluster.request", self.plan.crash_rate):
            return None
        if service_time <= 0.0:
            return None
        # roll() is uniform on [0, 1), so the point lands in
        # [0, service_time) -- never exactly at the completion boundary.
        return self.roll("cluster.request.point") * service_time

    def checkpoint_corrupts(self) -> bool:
        """``checkpoint.write``: is this checkpoint silently corrupted?"""
        return self.should_fail("checkpoint.write",
                                self.plan.checkpoint_corruption_rate)

    def restore_fails(self) -> bool:
        """``restore.load``: does this warm-state restore fail?"""
        return self.should_fail("restore.load",
                                self.plan.restore_failure_rate)

    _PACK_RATES = {"local": "pack_local_failure_rate",
                   "peer": "pack_peer_failure_rate",
                   "origin": "pack_origin_failure_rate"}

    def pack_fetch_fails(self, tier: str, now: float,
                         windowed: bool = True) -> bool:
        """``pack.fetch.{tier}``: does this pack fetch attempt fail?

        A fetch inside an interval-scoped window (registry outage for
        the origin tier, peer churn for the peer tier) is *forced* to
        fail without consuming a draw, so the seeded failure sequence
        at each site is independent of the windows — replays with and
        without windows see identical draws at every other visit.
        ``windowed=False`` skips the forced-failure check: a
        cross-region failover fetch targets a *remote* registry the
        fabric already checked is lit, so only the seeded origin rate
        applies.
        """
        plan = self.plan
        if windowed:
            if tier == "origin" and _in_windows(
                    plan.registry_outage_windows, now):
                return True
            if tier == "peer" and _in_windows(plan.peer_churn_windows,
                                              now):
                return True
        return self.should_fail(f"pack.fetch.{tier}",
                                getattr(plan, self._PACK_RATES[tier]))

    def pack_verify_fails(self) -> bool:
        """``pack.verify``: does the fetched pack fail its digest check?"""
        return self.should_fail("pack.verify",
                                self.plan.pack_corruption_rate)

    def registry_dark(self, now: float) -> bool:
        """Whether this plan's origin registry is inside an outage
        window at ``now`` (used for cross-region failover decisions)."""
        return _in_windows(self.plan.registry_outage_windows, now)

    def load_backoff(self, attempt: int) -> float:
        """Exponential backoff before load retry ``attempt`` (1-based)."""
        return self.plan.load_backoff_base_s * (2 ** (attempt - 1))
