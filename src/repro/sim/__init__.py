"""Discrete-event simulation substrate.

A small, deterministic, SimPy-like kernel used by every other subsystem in
the reproduction: the HIP runtime, the GPU stream, PASK's host threads and
the serving harness all run as generator-based processes over one shared
simulated clock.

The design intentionally mirrors the concurrency primitives the paper's
implementation uses: host threads become :class:`~repro.sim.core.Process`
objects, and the single-producer-single-consumer channels coordinating the
parse/load/issue threads (Sec. III-D) become :class:`~repro.sim.channel.Channel`.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.channel import Channel, ChannelClosed, ChannelClosedError
from repro.sim.faults import (
    FaultCounters,
    FaultError,
    FaultInjector,
    FaultPlan,
    InstanceCrash,
    LaunchFault,
    LoadFault,
)
from repro.sim.trace import Phase, TraceRecord, TraceRecorder, merge_intervals

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "ChannelClosedError",
    "Environment",
    "Event",
    "FaultCounters",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "InstanceCrash",
    "Interrupt",
    "LaunchFault",
    "LoadFault",
    "Phase",
    "Process",
    "SimulationError",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    "merge_intervals",
]
