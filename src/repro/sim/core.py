"""Deterministic discrete-event simulation kernel.

The kernel follows the classic event-queue design: an
:class:`Environment` owns a priority queue of scheduled events; processes
are Python generators that yield events and are resumed when those events
trigger.  Ties in time are broken by a monotonically increasing sequence
number, so runs are fully deterministic.

Only the features needed by the reproduction are implemented, which keeps
the kernel small enough to test exhaustively:

- :class:`Event` with ``succeed``/``fail``,
- :class:`Timeout`,
- :class:`Process` (a generator; also an event that triggers on return),
- :class:`AllOf` / :class:`AnyOf` combinators,
- process interruption (used for cancelling speculative loads).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (Any, Callable, Deque, Generator, Iterable, List, Optional,
                    Tuple)

__all__ = [
    "SimulationError",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A condition that may trigger at some simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` has been
    called (directly or by the environment) and *processed* once its
    callbacks have run.  Processes wait on events by ``yield``-ing them.

    The class hierarchy is slotted: simulations create one event per
    scheduled activity, so per-instance ``__dict__`` allocation is pure
    overhead on the hot path.  Subclasses defined outside this module
    simply fall back to having a ``__dict__`` again.
    """

    __slots__ = ("env", "callbacks", "_single_callback", "_value",
                 "_exception", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        # Lazily allocated: most events in a run (timeouts on the hot
        # path, bootstrap triggers) accrue at most one waiter, so the
        # list only materializes on the second callback.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._single_callback: Optional[Callable[["Event"], None]] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value (or exception) and is scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event triggered successfully (no exception)."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises the failure exception if it failed."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception propagated to waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.env._schedule(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            # Already processed: run the callback immediately so late
            # waiters still observe the value.
            callback(self)
        elif self._single_callback is None and self.callbacks is None:
            self._single_callback = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    @property
    def _has_waiters(self) -> bool:
        """Whether any callback is registered (pre-processing)."""
        return self._single_callback is not None or bool(self.callbacks)

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that triggers when it returns."""

    __slots__ = ("_generator", "name", "_target", "_interrupts")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(env)
        bootstrap._triggered = True
        env._schedule(bootstrap)
        bootstrap._add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already terminated")
        self._interrupts.append(Interrupt(cause))
        # Detach from the event currently waited on; resume immediately.
        trigger = Event(self.env)
        trigger._triggered = True
        self.env._schedule(trigger)
        trigger._add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        # Ignore stale wakeups from an event we stopped waiting for
        # (e.g. after an interrupt detached us from it).
        if self._interrupts:
            exc: Optional[BaseException] = self._interrupts.pop(0)
        elif event is not self._target and self._target is not None:
            return
        elif event._exception is not None:
            exc = event._exception
        else:
            exc = None
        self._target = None
        try:
            if exc is not None:
                next_event = self._generator.throw(exc)
            else:
                next_event = self._generator.send(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self._triggered = True
            self.env._schedule(self)
            return
        except BaseException as failure:  # propagate to waiters
            self._exception = failure
            self._triggered = True
            self.env._schedule(self)
            if not self._has_waiters:
                raise
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}, expected an Event")
        self._target = next_event
        next_event._add_callback(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self._triggered else "alive"
        return f"<Process {self.name} {state}>"


class AllOf(Event):
    """Triggers once every constituent event has triggered successfully."""

    __slots__ = ("_pending", "_results", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._pending = list(events)
        self._results: List[Any] = [None] * len(self._pending)
        self._remaining = len(self._pending)
        if self._remaining == 0:
            self.succeed([])
            return
        for index, event in enumerate(self._pending):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if self._triggered:
                return
            if event._exception is not None:
                self.fail(event._exception)
                return
            self._results[index] = event._value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._results))
        return on_done


class AnyOf(Event):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event._add_callback(self._on_done)

    def _on_done(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)


class Environment:
    """The simulation environment: clock plus event queue.

    Scheduling is split between two structures sharing one sequence
    counter: a heap for delayed events and a FIFO deque for immediate
    (zero-delay) ones.  Immediate scheduling dominates the hot path —
    every ``succeed``, process bootstrap, interrupt trigger and process
    termination schedules at the current instant — and the deque makes
    those O(1) instead of paying the heap's O(log n) push *and* pop.
    Because simulated time never decreases, the deque is always sorted
    by ``(time, sequence)``, so comparing the two heads reproduces the
    exact global ordering the single heap had: ties in time still break
    by sequence number, and determinism is preserved bit-for-bit (the
    property tests pin this).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._immediate: Deque[Tuple[float, int, Event]] = deque()
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter).

        A cheap volume metric for throughput reporting: every timeout,
        succeed, bootstrap and termination increments it exactly once.
        """
        return self._sequence

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        sequence = self._sequence
        self._sequence = sequence + 1
        if delay == 0.0:
            self._immediate.append((self._now, sequence, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, sequence, event))

    def _pop_next(self) -> Tuple[float, int, Event]:
        """The globally next ``(time, sequence, event)`` entry."""
        immediate = self._immediate
        queue = self._queue
        if immediate:
            # Unique sequence numbers mean the tuple comparison never
            # reaches the (incomparable) Event element.
            if queue and queue[0] < immediate[0]:
                return heapq.heappop(queue)
            return immediate.popleft()
        if queue:
            return heapq.heappop(queue)
        raise SimulationError("no more events scheduled")

    def _peek_time(self) -> Optional[float]:
        """The next scheduled time, or ``None`` when nothing is queued."""
        if self._immediate:
            if self._queue:
                return min(self._immediate[0][0], self._queue[0][0])
            return self._immediate[0][0]
        if self._queue:
            return self._queue[0][0]
        return None

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start ``generator`` as a process; returns the process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    def step(self) -> None:
        """Process the next scheduled event."""
        time, _seq, event = self._pop_next()
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        single = event._single_callback
        callbacks = event.callbacks
        event._single_callback = None
        event.callbacks = None
        event._processed = True
        if single is not None:
            single(event)
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until it
        is processed, returning its value).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not (self._immediate or self._queue):
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event triggered: {stop_event!r}")
                self.step()
            return stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError("cannot run into the past")
            while True:
                upcoming = self._peek_time()
                if upcoming is None or upcoming > horizon:
                    break
                self.step()
            self._now = horizon
            return None
        while self._immediate or self._queue:
            self.step()
        return None

    def __repr__(self) -> str:
        queued = len(self._queue) + len(self._immediate)
        return f"<Environment t={self._now:g} queued={queued}>"
