"""Execution tracing for breakdown and utilization metrics.

Every timed activity in the simulation (parsing a layer, loading a code
object, checking a solution's applicability, a kernel running on the GPU)
records a :class:`TraceRecord`.  The figures of the paper are aggregations
over such traces:

- Fig. 1(b) / Fig. 7: per-phase time breakdowns,
- Fig. 6(b): GPU utilization = merged EXEC interval length / total time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Phase", "TraceRecord", "TraceRecorder", "merge_intervals",
           "subtract_intervals"]


class Phase(enum.Enum):
    """Execution-ordering phases an activity can belong to.

    The first four mirror the cold-start breakdown of Fig. 1(b); CHECK and
    OVERHEAD separate the costs PASK itself introduces (Fig. 7).
    """

    PARSE = "parse"          # model de-serialization / layer parsing
    LOAD = "load"            # kernel code-object loading
    ISSUE = "issue"          # host-side kernel launch / runtime dispatch
    EXEC = "exec"            # GPU computation
    CHECK = "check"          # solution applicability checking (PASK lookup)
    OVERHEAD = "overhead"    # other PASK bookkeeping (cache maintenance)
    OTHER = "other"          # host-device sync, allocation, misc
    FAULT = "fault"          # injected failure / stall (repro.sim.faults)
    RETRY = "retry"          # backoff and re-attempt after a fault

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceRecord:
    """One timed activity."""

    start: float
    end: float
    actor: str
    phase: Phase
    label: str = ""
    meta: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping ``(start, end)`` intervals; returns sorted result."""
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(base: List[Tuple[float, float]],
                       remove: List[Tuple[float, float]]
                       ) -> List[Tuple[float, float]]:
    """Portions of merged ``base`` intervals not covered by merged
    ``remove`` intervals (both inputs must be sorted and disjoint)."""
    out: List[Tuple[float, float]] = []
    for start, end in base:
        cursor = start
        for r_start, r_end in remove:
            if r_end <= cursor or r_start >= end:
                continue
            if r_start > cursor:
                out.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


@dataclass
class TraceRecorder:
    """Collects trace records and computes the paper's aggregate metrics."""

    records: List[TraceRecord] = field(default_factory=list)

    def record(self, start: float, end: float, actor: str, phase: Phase,
               label: str = "", **meta: Any) -> TraceRecord:
        """Append a record; ``end`` must not precede ``start``."""
        if end < start:
            raise ValueError(f"record ends before it starts: {start} > {end}")
        rec = TraceRecord(start, end, actor, phase, label,
                          tuple(sorted(meta.items())))
        self.records.append(rec)
        return rec

    def filtered(self, phase: Optional[Phase] = None,
                 actor: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given phase and/or actor."""
        out = self.records
        if phase is not None:
            out = [r for r in out if r.phase is phase]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        return list(out)

    def total(self, phase: Optional[Phase] = None,
              actor: Optional[str] = None) -> float:
        """Summed durations of matching records (may double-count overlap)."""
        return sum(r.duration for r in self.filtered(phase, actor))

    def busy_time(self, phase: Optional[Phase] = None,
                  actor: Optional[str] = None) -> float:
        """Length of the merged union of matching intervals (no overlap)."""
        intervals = [(r.start, r.end) for r in self.filtered(phase, actor)]
        return sum(e - s for s, e in merge_intervals(intervals))

    def span(self) -> Tuple[float, float]:
        """``(earliest start, latest end)`` over all records."""
        if not self.records:
            return (0.0, 0.0)
        return (min(r.start for r in self.records),
                max(r.end for r in self.records))

    def breakdown(self, phases: Sequence[Phase],
                  total_time: Optional[float] = None) -> Dict[Phase, float]:
        """Fractions of ``total_time`` spent per phase (busy-time based).

        Without an explicit ``total_time`` the full trace span is used.
        Fractions need not sum to 1: phases may overlap each other and idle
        gaps are not attributed.
        """
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return {phase: 0.0 for phase in phases}
        return {phase: self.busy_time(phase=phase) / total_time
                for phase in phases}

    def exclusive_fractions(self, priorities: Sequence[Phase],
                            total_time: Optional[float] = None
                            ) -> Dict[Phase, float]:
        """Wall-clock fractions with each instant attributed to exactly
        one phase, earlier entries of ``priorities`` winning overlaps.

        This is how the paper's breakdowns count time: phases overlap
        under interleaved execution, but a wall-clock second belongs to
        whichever activity dominates it (GPU compute first, then loading,
        then bookkeeping).  Unattributed time is simply absent from the
        result; the caller usually assigns the remainder to "others".
        """
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return {phase: 0.0 for phase in priorities}
        claimed: List[Tuple[float, float]] = []
        out: Dict[Phase, float] = {}
        for phase in priorities:
            mine = merge_intervals(
                (r.start, r.end) for r in self.filtered(phase=phase))
            exclusive = subtract_intervals(mine, claimed)
            out[phase] = sum(e - s for s, e in exclusive) / total_time
            claimed = merge_intervals(claimed + mine)
        return out

    def utilization(self, actor: str = "gpu",
                    total_time: Optional[float] = None) -> float:
        """Fraction of time ``actor`` spent in EXEC (GPU utilization)."""
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return 0.0
        return self.busy_time(phase=Phase.EXEC, actor=actor) / total_time

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
