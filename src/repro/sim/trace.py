"""Execution tracing for breakdown and utilization metrics.

Every timed activity in the simulation (parsing a layer, loading a code
object, checking a solution's applicability, a kernel running on the GPU)
records a :class:`TraceRecord`.  The figures of the paper are aggregations
over such traces:

- Fig. 1(b) / Fig. 7: per-phase time breakdowns,
- Fig. 6(b): GPU utilization = merged EXEC interval length / total time.

Aggregation is *streaming*: the recorder folds every record into
per-(phase, actor) accumulators — a running duration sum plus an online
interval union — as it arrives, so ``total`` / ``busy_time`` /
``breakdown`` / ``exclusive_fractions`` / ``utilization`` never re-scan
the record history.  That turns metric queries from O(records) into
O(merged segments), which is what lets million-request serving
simulations stay interactive (see docs/PERFORMANCE.md).

Two retention policies control what else is kept:

- ``"full"`` (default) — every record is retained, as before; the
  accumulators are a pure acceleration structure and all metrics are
  byte-identical to a full scan (pinned by the property tests).
- ``"aggregate"`` — only the accumulators plus a bounded ring of the
  most recent records are retained, so a long-horizon run holds O(1)
  memory in the number of records while reporting the exact same
  aggregate metrics.
"""

from __future__ import annotations

import enum
import operator
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from itertools import accumulate, chain, compress, islice
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

__all__ = ["Phase", "TraceRecord", "TraceRecorder", "merge_intervals",
           "subtract_intervals", "RETENTION_POLICIES"]

RETENTION_POLICIES = ("full", "aggregate")


class Phase(enum.Enum):
    """Execution-ordering phases an activity can belong to.

    The first four mirror the cold-start breakdown of Fig. 1(b); CHECK and
    OVERHEAD separate the costs PASK itself introduces (Fig. 7).
    """

    PARSE = "parse"          # model de-serialization / layer parsing
    LOAD = "load"            # kernel code-object loading
    ISSUE = "issue"          # host-side kernel launch / runtime dispatch
    EXEC = "exec"            # GPU computation
    CHECK = "check"          # solution applicability checking (PASK lookup)
    OVERHEAD = "overhead"    # other PASK bookkeeping (cache maintenance)
    OTHER = "other"          # host-device sync, allocation, misc
    FAULT = "fault"          # injected failure / stall (repro.sim.faults)
    RETRY = "retry"          # backoff and re-attempt after a fault
    CHECKPOINT = "checkpoint"  # warm-state snapshot write (resilience)
    RESTORE = "restore"      # warm-state restore after crash/drain
    DRAIN = "drain"          # graceful supervised drain/restart

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceRecord:
    """One timed activity."""

    start: float
    end: float
    actor: str
    phase: Phase
    label: str = ""
    meta: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping or touching ``(start, end)`` intervals.

    Returns the canonical sorted, disjoint form.  Zero-length intervals
    (``start == end``) are *kept* as points unless another interval
    touches them — instantaneous activities (e.g. a CHECK answered from
    cache in zero simulated time) still count in record-based
    accounting.  Reversed intervals (``end < start``) are invalid input
    and are dropped.
    """
    ordered = sorted((s, e) for s, e in intervals if e >= s)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(base: List[Tuple[float, float]],
                       remove: List[Tuple[float, float]]
                       ) -> List[Tuple[float, float]]:
    """Portions of merged ``base`` intervals not covered by merged
    ``remove`` intervals (both inputs must be sorted and disjoint).

    Zero-length *remove* intervals carry no measure and are ignored, so
    subtracting a point never splits a base interval in two.  A
    zero-length *base* interval survives unless a positive-length remove
    interval covers it.
    """
    out: List[Tuple[float, float]] = []
    for start, end in base:
        cursor = start
        for r_start, r_end in remove:
            if r_end <= r_start or r_end <= cursor or r_start >= end:
                continue
            if r_start > cursor:
                out.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end or (cursor == start == end):
            out.append((cursor, end))
    return out


def _insert_interval(segs: List[Tuple[float, float]],
                     start: float, end: float) -> None:
    """Insert ``(start, end)`` into the sorted disjoint union ``segs``.

    Out-of-order arrivals land here (the appending fast path lives in
    :meth:`_Accumulator.add`); the result is the same canonical form
    :func:`merge_intervals` produces over the whole history.
    """
    i = bisect_left(segs, (start, end))
    if i > 0 and segs[i - 1][1] >= start:
        i -= 1
        start = segs[i][0]
        if segs[i][1] > end:
            end = segs[i][1]
    j = i
    while j < len(segs) and segs[j][0] <= end:
        if segs[j][1] > end:
            end = segs[j][1]
        j += 1
    segs[i:j] = [(start, end)]


class _Accumulator:
    """Streaming aggregate for one (phase, actor) filter key.

    ``total`` accumulates durations in record-arrival order — the exact
    float sequence a full scan would sum — and ``segs`` maintains the
    canonical merged interval union online.  Records for a single actor
    mostly arrive in non-decreasing start order, so the common case is a
    O(1) append/extend of the last segment; stragglers fall back to a
    bisect insertion.
    """

    __slots__ = ("total", "count", "segs", "_busy", "_dirty")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self.segs: List[Tuple[float, float]] = []
        self._busy = 0.0
        self._dirty = False

    def add(self, start: float, end: float, duration: float) -> None:
        self.total += duration
        self.count += 1
        self._dirty = True
        segs = self.segs
        if not segs or start > segs[-1][1]:
            segs.append((start, end))
        elif start >= segs[-1][0]:
            last = segs[-1]
            if end > last[1]:
                segs[-1] = (last[0], end)
        else:
            _insert_interval(segs, start, end)

    def busy(self) -> float:
        """Union length — identical to summing the merged full scan.

        Cached between mutations: the recompute is always the canonical
        left-to-right sum over the sorted segments, so the cache never
        changes the float result, it only skips redundant O(segments)
        scans on repeated metric queries.
        """
        if self._dirty:
            self._busy = sum(e - s for s, e in self.segs)
            self._dirty = False
        return self._busy


_Key = Tuple[Optional[Phase], Optional[str]]


class TraceRecorder:
    """Collects trace records and computes the paper's aggregate metrics.

    ``retention="full"`` (default) keeps the entire record history in
    ``records`` — a plain list, safe to read (and, for legacy callers,
    append to: lazily-folded stragglers are picked up before the next
    metric query).  ``retention="aggregate"`` keeps only the streaming
    accumulators plus a bounded ring (``ring_size``) of the most recent
    records; aggregate metrics are byte-identical between the two
    policies, but ``filtered()`` then only sees the ring.
    """

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None,
                 retention: str = "full", ring_size: int = 1024) -> None:
        if retention not in RETENTION_POLICIES:
            raise ValueError(f"unknown retention policy {retention!r}; "
                             f"expected one of {RETENTION_POLICIES}")
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.retention = retention
        self.ring_size = ring_size
        self.records: Union[List[TraceRecord], "deque[TraceRecord]"]
        if retention == "full":
            self.records = []
        else:
            self.records = deque(maxlen=ring_size)
        self._acc: Dict[_Key, _Accumulator] = {}
        self._count = 0          # records ever ingested
        self._synced = 0         # records folded from the full-mode list
        self._span_start = 0.0
        self._span_end = 0.0
        # Optional telemetry hook (repro.obs): called with every record
        # that flows through ingest()/ingest_stream().  None (default)
        # keeps the hot path to a single falsy check; records appended
        # directly to ``records`` by legacy callers bypass it.
        self.observer: Optional[Any] = None
        if records is not None:
            for record in records:
                self.ingest(record)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def record(self, start: float, end: float, actor: str, phase: Phase,
               label: str = "", **meta: Any) -> TraceRecord:
        """Append a record; ``end`` must not precede ``start``."""
        if end < start:
            raise ValueError(f"record ends before it starts: {start} > {end}")
        rec = TraceRecord(start, end, actor, phase, label,
                          tuple(sorted(meta.items())))
        self.ingest(rec)
        return rec

    def ingest(self, rec: TraceRecord) -> None:
        """Fold an already-built record into the aggregates and retain it
        (fully, or in the ring under ``retention="aggregate"``)."""
        self._sync()
        self._fold(rec)
        self.records.append(rec)
        self._synced = self._count
        if self.observer is not None:
            self.observer(rec)

    def ingest_stream(self, spans: Iterable[Tuple[float, float]],
                      actor: str, phase: Phase, label: str = "") -> None:
        """Fold a homogeneous stream of ``(start, end)`` intervals.

        Byte-identical to calling :meth:`record` once per pair with the
        same actor/phase/label (and no meta), but the accumulator keys
        resolve once for the whole stream and, under aggregate
        retention, only intervals that can survive the ring are
        materialized as :class:`TraceRecord` objects — which is what
        makes million-record steady-state batches cheap.
        """
        self._sync()
        span_list = list(spans)
        if not span_list:
            return
        starts = [start for start, _ in span_list]
        ends = [end for _, end in span_list]
        if any(map(operator.gt, starts, ends)):
            for start, end in span_list:
                if end < start:
                    raise ValueError(
                        f"record ends before it starts: {start} > {end}")
        # Durations once, at C speed; each bucket still folds them
        # left-to-right so its running sum is the exact float sequence a
        # per-record ingest would produce.
        durations = list(map(operator.sub, ends, starts))
        # Merge the batch into its canonical interval union ONCE, then
        # fold the (typically few) merged segments into each bucket.
        # Canonical form — sorted, disjoint, touching intervals merged,
        # isolated zero-length points kept — is a function of the input
        # point set alone, and every endpoint is an input float (the
        # maintenance only selects endpoints, never computes new ones),
        # so union-then-fold yields byte-identical segs to folding the
        # raw spans one at a time.
        if any(map(operator.gt, starts, islice(starts, 1, None))):
            union = merge_intervals(span_list)
        else:
            # Sorted starts (the steady-state shape): a new canonical
            # segment opens exactly where a start clears the running
            # maximum of all earlier ends, and that running maximum at
            # the segment's last index is the segment's end.  Everything
            # runs inside itertools/operator.
            if any(map(operator.gt, ends, islice(ends, 1, None))):
                run_max = list(accumulate(ends, max))
            else:
                run_max = ends
            opens = list(map(operator.gt, islice(starts, 1, None), run_max))
            union = list(zip(compress(starts, chain((True,), opens)),
                             compress(run_max, chain(opens, (True,)))))
        acc = self._acc
        batch = len(span_list)
        for key in ((phase, actor), (phase, None),
                    (None, actor), (None, None)):
            bucket = acc.get(key)
            if bucket is None:
                bucket = acc[key] = _Accumulator()
            bucket.total = deque(
                accumulate(durations, initial=bucket.total), maxlen=1)[0]
            bucket.count += batch
            bucket._dirty = True
            segs = bucket.segs
            # Merge only the union prefix that interacts with existing
            # history; the remainder — all of it, in the common case of
            # a batch that starts after everything recorded so far —
            # appends in one C-level extend.
            overlap = 0
            if segs:
                last_start, last_end = segs[-1]
                for start, end in union:
                    if start > last_end:
                        break
                    if start >= last_start:
                        if end > last_end:
                            segs[-1] = (last_start, end)
                            last_end = end
                    else:
                        _insert_interval(segs, start, end)
                        last_start, last_end = segs[-1]
                    overlap += 1
            if overlap:
                segs.extend(islice(union, overlap, None))
            else:
                segs.extend(union)
        if self.observer is not None:
            # Fast-forwarded / batched segments still surface as
            # individual spans downstream: synthesize the records a
            # per-record ingest would have produced.
            observer = self.observer
            for start, end in span_list:
                observer(TraceRecord(start, end, actor, phase, label))
        lo = min(starts)
        hi = max(ends)
        if self._count == 0:
            self._span_start = lo
            self._span_end = hi
        else:
            if lo < self._span_start:
                self._span_start = lo
            if hi > self._span_end:
                self._span_end = hi
        self._count += len(span_list)
        records = self.records
        tail = (span_list if self.retention == "full"
                else span_list[-self.ring_size:])
        for start, end in tail:
            records.append(TraceRecord(start, end, actor, phase, label))
        self._synced = self._count

    def _fold(self, rec: TraceRecord) -> None:
        start, end = rec.start, rec.end
        duration = end - start
        acc = self._acc
        for key in ((rec.phase, rec.actor), (rec.phase, None),
                    (None, rec.actor), (None, None)):
            bucket = acc.get(key)
            if bucket is None:
                bucket = acc[key] = _Accumulator()
            bucket.add(start, end, duration)
        if self._count == 0:
            self._span_start = start
            self._span_end = end
        else:
            if start < self._span_start:
                self._span_start = start
            if end > self._span_end:
                self._span_end = end
        self._count += 1

    def _sync(self) -> None:
        """Fold records appended directly to ``records`` (legacy path,
        full retention only) that the accumulators have not seen yet."""
        if self.retention != "full":
            return
        records = self.records
        if len(records) == self._synced:
            return
        if len(records) < self._synced:
            # The list shrank under us (external truncation): rebuild.
            retained = list(records)
            self._acc.clear()
            self._count = 0
            self._synced = 0
            records.clear()
            for rec in retained:
                self.ingest(rec)
            return
        for rec in list(records[self._synced:]):
            self._fold(rec)
        self._synced = len(records)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Total records ever ingested (survives ring eviction)."""
        self._sync()
        return self._count

    @property
    def retained_records(self) -> int:
        """Records currently held in memory (== ``record_count`` under
        full retention; bounded by ``ring_size`` under aggregate)."""
        return len(self.records)

    def filtered(self, phase: Optional[Phase] = None,
                 actor: Optional[str] = None) -> List[TraceRecord]:
        """Retained records matching the given phase and/or actor.

        Under full retention this is the whole history; under aggregate
        retention only the ring of recent records is visible.  With no
        filter and full retention the live list is returned without
        copying — treat it as read-only.
        """
        if phase is None and actor is None:
            if self.retention == "full":
                return self.records  # type: ignore[return-value]
            return list(self.records)
        return [r for r in self.records
                if (phase is None or r.phase is phase)
                and (actor is None or r.actor == actor)]

    def _segments(self, phase: Optional[Phase],
                  actor: Optional[str]) -> List[Tuple[float, float]]:
        """The canonical merged interval union for a filter key.

        The returned list is live accumulator state — callers must not
        mutate it.
        """
        self._sync()
        acc = self._acc.get((phase, actor))
        return acc.segs if acc is not None else []

    # ------------------------------------------------------------------
    # Aggregate metrics (all O(merged segments), never O(records))
    # ------------------------------------------------------------------
    def total(self, phase: Optional[Phase] = None,
              actor: Optional[str] = None) -> float:
        """Summed durations of matching records (may double-count overlap)."""
        self._sync()
        acc = self._acc.get((phase, actor))
        return acc.total if acc is not None else 0.0

    def busy_time(self, phase: Optional[Phase] = None,
                  actor: Optional[str] = None) -> float:
        """Length of the merged union of matching intervals (no overlap)."""
        self._sync()
        acc = self._acc.get((phase, actor))
        return acc.busy() if acc is not None else 0.0

    def span(self) -> Tuple[float, float]:
        """``(earliest start, latest end)`` over all records."""
        self._sync()
        if not self._count:
            return (0.0, 0.0)
        return (self._span_start, self._span_end)

    def breakdown(self, phases: Sequence[Phase],
                  total_time: Optional[float] = None) -> Dict[Phase, float]:
        """Fractions of ``total_time`` spent per phase (busy-time based).

        Without an explicit ``total_time`` the full trace span is used.
        Fractions need not sum to 1: phases may overlap each other and idle
        gaps are not attributed.
        """
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return {phase: 0.0 for phase in phases}
        return {phase: self.busy_time(phase=phase) / total_time
                for phase in phases}

    def exclusive_fractions(self, priorities: Sequence[Phase],
                            total_time: Optional[float] = None
                            ) -> Dict[Phase, float]:
        """Wall-clock fractions with each instant attributed to exactly
        one phase, earlier entries of ``priorities`` winning overlaps.

        This is how the paper's breakdowns count time: phases overlap
        under interleaved execution, but a wall-clock second belongs to
        whichever activity dominates it (GPU compute first, then loading,
        then bookkeeping).  Unattributed time is simply absent from the
        result; the caller usually assigns the remainder to "others".
        """
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return {phase: 0.0 for phase in priorities}
        claimed: List[Tuple[float, float]] = []
        out: Dict[Phase, float] = {}
        for phase in priorities:
            mine = self._segments(phase, None)
            exclusive = subtract_intervals(mine, claimed)
            out[phase] = sum(e - s for s, e in exclusive) / total_time
            claimed = merge_intervals(claimed + mine)
        return out

    def utilization(self, actor: str = "gpu",
                    total_time: Optional[float] = None) -> float:
        """Fraction of time ``actor`` spent in EXEC (GPU utilization)."""
        if total_time is None:
            start, end = self.span()
            total_time = end - start
        if total_time <= 0:
            return 0.0
        return self.busy_time(phase=Phase.EXEC, actor=actor) / total_time

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the recorder: retained records plus the
        streaming aggregates, so :meth:`from_state` reconstructs an
        aggregate-mode recorder exactly even though most of its record
        history is gone.  Floats survive a JSON round-trip bit-for-bit.
        """
        self._sync()
        return {
            "retention": self.retention,
            "ring_size": self.ring_size,
            "count": self._count,
            "span": [self._span_start, self._span_end],
            "records": [[r.start, r.end, r.actor, r.phase.value, r.label,
                         [[k, v] for k, v in r.meta]] for r in self.records],
            "acc": [[phase.value if phase is not None else None, actor,
                     a.total, a.count, [[s, e] for s, e in a.segs]]
                    for (phase, actor), a in self._acc.items()],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "TraceRecorder":
        """Inverse of :meth:`state_dict`."""
        recorder = cls(retention=state["retention"],
                       ring_size=state["ring_size"])
        for start, end, actor, phase, label, meta in state["records"]:
            recorder.records.append(TraceRecord(
                start, end, actor, Phase(phase), label,
                tuple((k, v) for k, v in meta)))
        for phase, actor, total, count, segs in state["acc"]:
            acc = _Accumulator()
            acc.total = total
            acc.count = count
            acc.segs = [(s, e) for s, e in segs]
            acc._dirty = True
            key = (Phase(phase) if phase is not None else None, actor)
            recorder._acc[key] = acc
        recorder._count = state["count"]
        recorder._synced = len(recorder.records)
        recorder._span_start, recorder._span_end = state["span"]
        return recorder

    def clear(self) -> None:
        """Drop all records and aggregates."""
        self.records.clear()
        self._acc.clear()
        self._count = 0
        self._synced = 0
        self._span_start = 0.0
        self._span_end = 0.0

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecorder):
            return NotImplemented
        return (self.retention == other.retention
                and list(self.records) == list(other.records))

    def __repr__(self) -> str:
        return (f"TraceRecorder(retention={self.retention!r}, "
                f"records={self.record_count}, "
                f"retained={self.retained_records})")
