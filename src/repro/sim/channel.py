"""Single-producer-single-consumer channels.

The paper's implementation coordinates the parse/load/issue host threads
with SPSC channels (Sec. III-D); this module provides the simulated
equivalent.  ``put`` and ``get`` return events to be yielded from a
process.  A channel can be *closed* by the producer; pending and
subsequent ``get`` calls then resolve to :data:`ChannelClosed`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Channel", "ChannelClosed", "ChannelClosedError"]


class ChannelClosedError(SimulationError):
    """Delivered to a producer whose pending ``put`` was cut off by
    :meth:`Channel.close` (e.g. the consumer crashed)."""


class _ChannelClosedType:
    """Sentinel delivered to getters of a closed, drained channel."""

    _instance: Optional["_ChannelClosedType"] = None

    def __new__(cls) -> "_ChannelClosedType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ChannelClosed"


ChannelClosed = _ChannelClosedType()


class Channel:
    """FIFO channel with optional bounded capacity.

    ``capacity=None`` means unbounded (puts never block).  With a bounded
    capacity a ``put`` blocks until a slot frees up, which is how
    back-pressure between the parse, load and issue threads is modelled.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = "channel") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event triggers once accepted."""
        if self._closed:
            raise SimulationError(f"put() on closed channel {self.name!r}")
        event = self.env.event()
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue an item; the returned event triggers with the item.

        On a closed and drained channel the event triggers with
        :data:`ChannelClosed` instead.
        """
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_waiting_putter()
        elif self._closed:
            event.succeed(ChannelClosed)
        else:
            self._getters.append(event)
        return event

    def close(self) -> None:
        """Mark the channel closed; wakes getters once items drain.

        A pending ``get`` receives :data:`ChannelClosed` (after any
        buffered items); a pending ``put`` fails with
        :class:`ChannelClosedError`.  Closing therefore never leaves a
        blocked producer or consumer parked forever -- the property a
        crashed/stalled peer thread relies on to unwind cleanly.
        """
        if self._closed:
            return
        self._closed = True
        while self._putters:
            event, _item = self._putters.popleft()
            event.fail(ChannelClosedError(
                f"put() cut off by close() on channel {self.name!r}"))
        if not self._items:
            while self._getters:
                self._getters.popleft().succeed(ChannelClosed)

    def _admit_waiting_putter(self) -> None:
        if self._putters and (self.capacity is None
                              or len(self._items) < self.capacity):
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()
        if self._closed and not self._items:
            while self._getters:
                self._getters.popleft().succeed(ChannelClosed)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<Channel {self.name} {state} items={len(self._items)} "
                f"getters={len(self._getters)} putters={len(self._putters)}>")
