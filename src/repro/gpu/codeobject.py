"""Kernel code objects: the unit of loading.

MIOpen ships one compiled code object (``.co``, an ELF image of SASS/GCN
instructions) per solution; a solution's kernels are symbols inside that
image.  ``hipModuleLoad`` loads the whole image; ``hipModuleGetFunction``
resolves one symbol.  Two layers picking the *same* solution therefore
share one load -- the physical fact PASK's reuse exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["KernelSymbol", "CodeObjectFile"]


@dataclass(frozen=True)
class KernelSymbol:
    """One GPU kernel entry point inside a code object."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel symbol needs a non-empty name")


@dataclass(frozen=True)
class CodeObjectFile:
    """An ELF-like compiled binary holding one or more kernel symbols."""

    name: str
    size_bytes: int
    symbols: Tuple[KernelSymbol, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("code object needs a non-empty name")
        if self.size_bytes <= 0:
            raise ValueError(f"code object {self.name!r} has size {self.size_bytes}")
        if not self.symbols:
            raise ValueError(f"code object {self.name!r} has no symbols")
        seen = set()
        for symbol in self.symbols:
            if symbol.name in seen:
                raise ValueError(
                    f"duplicate symbol {symbol.name!r} in {self.name!r}")
            seen.add(symbol.name)

    def has_symbol(self, name: str) -> bool:
        """Whether this image exports a kernel called ``name``."""
        return any(s.name == name for s in self.symbols)

    @staticmethod
    def single_kernel(name: str, size_bytes: int) -> "CodeObjectFile":
        """Convenience: a code object exporting exactly one same-named kernel."""
        return CodeObjectFile(name, size_bytes, (KernelSymbol(name),))
