"""GPU device specifications and cost-model constants.

Three devices from Fig. 1(a) are modelled.  The compute-side numbers
(CUs, TFLOPs, memory bandwidth) are the public datasheet values; the
code-loading constants are calibrated so that the cold/hot ratios land in
the paper's observed bands (MI100 ~24x, A100 ~20x, RX 6900XT ~31x):
data-center parts have faster NVMe/driver paths than the consumer card,
and the CDNA/ROCm loader is slightly slower than CUDA's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DeviceSpec", "MI100", "A100", "RX6900XT", "get_device", "list_devices"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU plus its host-runtime cost constants."""

    name: str
    vendor: str
    compute_units: int
    clock_ghz: float
    fp32_tflops: float
    mem_bandwidth_gbps: float
    # Host-side runtime costs.
    kernel_launch_overhead_s: float   # per kernel launch (driver dispatch)
    code_load_base_s: float           # fixed cost per hipModuleLoad
    code_io_bandwidth_mbps: float     # ELF read + relocation throughput
    symbol_resolve_s: float           # per hipModuleGetFunction
    mem_protect_s: float              # set memory permissions per module
    # Lazy (launch-path) loads are slower than dedicated streaming loads:
    # the runtime synchronizes the stream, re-acquires driver locks per
    # module, and cold-misses the file cache because requests are
    # scattered across the run.  A dedicated loader thread streams
    # modules back-to-back and amortizes all of that.
    reactive_load_penalty: float = 2.3

    def __post_init__(self) -> None:
        numeric_fields = (
            self.compute_units, self.clock_ghz, self.fp32_tflops,
            self.mem_bandwidth_gbps, self.kernel_launch_overhead_s,
            self.code_load_base_s, self.code_io_bandwidth_mbps,
            self.symbol_resolve_s, self.mem_protect_s,
        )
        if any(v <= 0 for v in numeric_fields):
            raise ValueError(f"device {self.name!r} has non-positive constants")

    @property
    def fp32_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.fp32_tflops * 1e12

    @property
    def mem_bandwidth(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def code_io_bandwidth(self) -> float:
        """Code-object loading throughput in bytes/s."""
        return self.code_io_bandwidth_mbps * 1e6


MI100 = DeviceSpec(
    name="MI100", vendor="AMD",
    compute_units=120, clock_ghz=1.502,
    fp32_tflops=23.1, mem_bandwidth_gbps=1228.8,
    kernel_launch_overhead_s=12e-6,
    code_load_base_s=0.35e-3,
    code_io_bandwidth_mbps=150.0,
    symbol_resolve_s=0.10e-3,
    mem_protect_s=0.12e-3,
)

A100 = DeviceSpec(
    name="A100", vendor="NVIDIA",
    compute_units=108, clock_ghz=1.410,
    fp32_tflops=19.5, mem_bandwidth_gbps=1555.0,
    kernel_launch_overhead_s=10e-6,
    code_load_base_s=0.30e-3,
    code_io_bandwidth_mbps=190.0,
    symbol_resolve_s=0.08e-3,
    mem_protect_s=0.10e-3,
)

RX6900XT = DeviceSpec(
    name="6900XT", vendor="AMD",
    compute_units=80, clock_ghz=2.250,
    fp32_tflops=23.0, mem_bandwidth_gbps=512.0,
    kernel_launch_overhead_s=15e-6,
    code_load_base_s=0.45e-3,
    code_io_bandwidth_mbps=105.0,
    symbol_resolve_s=0.13e-3,
    mem_protect_s=0.16e-3,
)

_REGISTRY: Dict[str, DeviceSpec] = {d.name: d for d in (MI100, A100, RX6900XT)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by name (``MI100``, ``A100``, ``6900XT``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None


def list_devices() -> List[str]:
    """Names of all modelled devices."""
    return sorted(_REGISTRY)
