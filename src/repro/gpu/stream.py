"""An in-order GPU stream.

Kernels enqueue in FIFO order and execute back-to-back on the device; the
host gets a completion event per kernel.  The stream records each
execution in the trace with actor ``"gpu"`` so GPU utilization (Fig. 6(b))
is the merged EXEC busy time over the run span.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.spans import NULL_RECORDER
from repro.sim.core import Environment, Event
from repro.sim.faults import FaultInjector
from repro.sim.trace import Phase, TraceRecorder

__all__ = ["Stream"]


class Stream:
    """A single in-order execution queue on one GPU."""

    def __init__(self, env: Environment, trace: Optional[TraceRecorder] = None,
                 name: str = "stream0",
                 faults: Optional[FaultInjector] = None,
                 spans=NULL_RECORDER) -> None:
        self.env = env
        self.trace = trace
        self.name = name
        self.faults = faults
        self.spans = spans if spans is not None else NULL_RECORDER
        self._available_at = 0.0
        self._kernels_executed = 0

    @property
    def available_at(self) -> float:
        """Simulated time at which the stream drains (last kernel ends)."""
        return self._available_at

    @property
    def kernels_executed(self) -> int:
        """Number of kernels enqueued so far."""
        return self._kernels_executed

    def enqueue(self, duration: float, label: str = "kernel", **meta) -> Event:
        """Enqueue a kernel taking ``duration`` seconds of GPU time.

        Returns an event that triggers when the kernel completes.  Kernels
        start no earlier than now and no earlier than the previous kernel's
        completion (in-order stream semantics).
        """
        if duration < 0:
            raise ValueError(f"negative kernel duration {duration!r}")
        start = max(self.env.now, self._available_at)
        if self.faults is not None:
            # Injected device-side stall (``stream.enqueue``): the kernel
            # sits in the queue before executing, visibly in the trace.
            stall = self.faults.exec_stall()
            if stall > 0:
                if self.trace is not None:
                    self.trace.record(start, start + stall, "gpu",
                                      Phase.FAULT, f"{label}/exec-stall")
                self.faults.counters.exec_stalls += 1
                start += stall
        end = start + duration
        self._available_at = end
        self._kernels_executed += 1
        if self.trace is not None and duration > 0:
            self.trace.record(start, end, "gpu", Phase.EXEC, label, **meta)
        else:
            # No EXEC record, so any causal links staged for this kernel
            # must not leak onto the next one.
            self.spans.drop_staged()
        return self.env.timeout(end - self.env.now, value=label)

    def synchronize(self) -> Event:
        """Event that triggers once all enqueued kernels have completed."""
        remaining = max(0.0, self._available_at - self.env.now)
        return self.env.timeout(remaining)
