"""HIP-like host runtime with lazy code-object loading.

The runtime owns the set of loaded modules (the "managed host memory" of
Sec. II-A).  Its API is generator-based: callers drive it with
``yield from`` inside a simulation process, and all costs are billed to
the calling process on the simulated clock.

Two behaviours from the paper are reproduced exactly:

- **Lazy loading**: :meth:`HipRuntime.launch_kernel` loads an absent code
  object on demand, blocking the calling (launching) thread -- the
  reactive behaviour that produces cold-start stalls.
- **Load coalescing**: if a second thread requests a module already being
  loaded (PASK's loading thread racing the issuing thread), it waits on
  the in-flight load instead of duplicating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.gpu.codeobject import CodeObjectFile
from repro.gpu.device import DeviceSpec
from repro.gpu.loader import (checkpoint_time, load_time, restore_time,
                              symbol_resolve_time)
from repro.gpu.stream import Stream
from repro.obs.spans import NULL_RECORDER
from repro.sim.core import Environment, Event
from repro.sim.faults import (CheckpointFault, FaultInjector, FaultPlan,
                              LaunchFault, LoadFault, RestoreFault)
from repro.sim.trace import Phase, TraceRecorder

__all__ = ["HipModule", "HipRuntime", "KernelNotLoadedError",
           "RuntimeSnapshot"]


class KernelNotLoadedError(Exception):
    """Raised when launching with ``lazy=False`` and the module is absent."""


@dataclass(frozen=True)
class RuntimeSnapshot:
    """Immutable warm-state checkpoint of a runtime's loaded modules.

    Captures, per module, the code object and the set of symbols already
    resolved -- enough to re-materialize the managed host memory without
    replaying the per-module load + relocation + resolve sequence
    (GPUReplay-style record/replay of the registry).  ``corrupt`` marks a
    checkpoint whose write was silently damaged by an injected
    ``checkpoint.write`` fault; the damage surfaces only when the
    snapshot is restored.
    """

    device_name: str
    taken_at: float
    entries: Tuple[Tuple[CodeObjectFile, FrozenSet[str]], ...]
    corrupt: bool = False

    @property
    def size_bytes(self) -> int:
        """Total bytes of code objects captured in this snapshot."""
        return sum(co.size_bytes for co, _ in self.entries)

    @property
    def names(self) -> FrozenSet[str]:
        """Names of the code objects captured in this snapshot."""
        return frozenset(co.name for co, _ in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class HipModule:
    """A loaded code object plus its resolved symbols."""

    code_object: CodeObjectFile
    loaded_at: float
    resolved_symbols: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        """The loaded code object's name."""
        return self.code_object.name


class HipRuntime:
    """Simulated HIP host runtime bound to one device and one stream."""

    def __init__(self, env: Environment, device: DeviceSpec,
                 trace: Optional[TraceRecorder] = None,
                 faults: Optional[object] = None,
                 spans=None, metrics=None) -> None:
        self.env = env
        self.device = device
        self.trace = trace if trace is not None else TraceRecorder()
        # ``faults`` may be a FaultPlan (a fresh per-run injector is
        # derived) or an already-bound FaultInjector (shared cursor).
        if isinstance(faults, FaultPlan):
            faults = faults.injector()
        self.faults: Optional[FaultInjector] = faults
        # Telemetry (repro.obs) is opt-in: without an explicit recorder
        # the shared no-op singleton is held and every span call is a
        # free no-op; with one, every trace record mirrors into a span
        # stamped on the simulation clock.
        if spans is not None:
            self.spans = spans
            spans.bind(self.trace, clock=lambda: self.env.now)
        else:
            self.spans = NULL_RECORDER
        self.metrics = metrics
        if metrics is not None:
            self._m_loads = metrics.counter(
                "runtime_loads_total", "Code-object loads completed")
            self._m_load_bytes = metrics.counter(
                "runtime_load_bytes_total", "Bytes of code objects loaded")
            self._m_evictions = metrics.counter(
                "runtime_evictions_total", "Modules dropped by evict_all")
        self.stream = Stream(env, self.trace, faults=self.faults,
                             spans=self.spans)
        self._modules: Dict[str, HipModule] = {}
        self._pending: Dict[str, Event] = {}
        self.load_count = 0
        self.total_load_time = 0.0
        # Warm-restore accounting: modules that became resident via
        # RuntimeSnapshot.restore() rather than a full load.
        self.restored_names: Set[str] = set()
        self.restored_bytes = 0

    # ------------------------------------------------------------------
    # Module management
    # ------------------------------------------------------------------
    def is_loaded(self, code_object_name: str) -> bool:
        """Whether a code object is resident in managed host memory."""
        return code_object_name in self._modules

    def is_loading(self, code_object_name: str) -> bool:
        """Whether a load for this code object is currently in flight."""
        return code_object_name in self._pending

    @property
    def loaded_modules(self) -> Dict[str, HipModule]:
        """Mapping of loaded code-object name -> module (read-only view)."""
        return dict(self._modules)

    @property
    def loaded_bytes(self) -> int:
        """Total bytes of loaded code objects."""
        return sum(m.code_object.size_bytes for m in self._modules.values())

    def module_load(self, code_object: CodeObjectFile, actor: str = "host",
                    reactive: bool = False):
        """``hipModuleLoad``: load an ELF image (generator, yields events).

        Returns the :class:`HipModule`.  Re-loading a resident module is
        free; a load already in flight is awaited rather than duplicated.
        ``reactive=True`` marks a lazy launch-path load, which pays the
        device's reactive-load penalty.
        """
        name = code_object.name
        if name in self._modules:
            return self._modules[name]
        if name in self._pending:
            yield self._pending[name]
            return self._modules[name]
        done = self.env.event()
        self._pending[name] = done
        duration = load_time(code_object, self.device, reactive=reactive)
        try:
            attempt = 1
            while self.faults is not None and self.faults.load_fails():
                # Injected transient load failure: bill the partial
                # progress, then either back off and retry or give up.
                counters = self.faults.counters
                counters.load_faults += 1
                fault_start = self.env.now
                progress = duration * self.faults.plan.load_failure_progress
                if progress > 0:
                    yield self.env.timeout(progress)
                self.trace.record(fault_start, self.env.now, actor,
                                  Phase.FAULT, f"{name}/load-fault",
                                  attempt=attempt)
                if attempt >= self.faults.plan.max_load_attempts:
                    error = LoadFault(
                        f"load of {name!r} failed after {attempt} attempts")
                    done.fail(error)
                    raise error
                backoff = self.faults.load_backoff(attempt)
                retry_start = self.env.now
                if backoff > 0:
                    yield self.env.timeout(backoff)
                self.trace.record(retry_start, self.env.now, actor,
                                  Phase.RETRY, f"{name}/load-retry",
                                  attempt=attempt)
                counters.load_retries += 1
                attempt += 1
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            del self._pending[name]
        module = HipModule(code_object, loaded_at=self.env.now)
        self._modules[name] = module
        self.load_count += 1
        self.total_load_time += duration
        self.trace.record(start, self.env.now, actor, Phase.LOAD,
                          name, size=code_object.size_bytes)
        if self.metrics is not None:
            mode = "reactive" if reactive else "proactive"
            self._m_loads.inc(mode=mode, device=self.device.name)
            self._m_load_bytes.inc(code_object.size_bytes, mode=mode,
                                   device=self.device.name)
        done.succeed(module)
        return module

    def get_function(self, module: HipModule, symbol_name: str,
                     actor: str = "host"):
        """``hipModuleGetFunction``: resolve a kernel symbol (generator).

        The lookup cost is billed once per (module, symbol).
        """
        if not module.code_object.has_symbol(symbol_name):
            raise KeyError(
                f"module {module.name!r} exports no symbol {symbol_name!r}")
        if symbol_name in module.resolved_symbols:
            return symbol_name
        start = self.env.now
        yield self.env.timeout(symbol_resolve_time(self.device))
        module.resolved_symbols.add(symbol_name)
        self.trace.record(start, self.env.now, actor, Phase.LOAD,
                          f"{module.name}:{symbol_name}")
        return symbol_name

    def preload(self, code_objects: Iterable[CodeObjectFile]) -> None:
        """Mark code objects resident at zero cost (hot start / Ideal).

        Symbols are marked resolved as well, matching a model that already
        ran at least one full iteration.
        """
        for code_object in code_objects:
            module = HipModule(code_object, loaded_at=self.env.now)
            module.resolved_symbols = {s.name for s in code_object.symbols}
            self._modules[code_object.name] = module

    def evict_all(self) -> None:
        """Drop all loaded modules (a fresh process / cold instance)."""
        if self._pending:
            raise RuntimeError("cannot evict while loads are in flight")
        if self.metrics is not None and self._modules:
            self._m_evictions.inc(len(self._modules),
                                  device=self.device.name)
        self._modules.clear()
        self.restored_names.clear()

    # ------------------------------------------------------------------
    # Warm-state checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self, actor: str = "host"):
        """Write a warm-state checkpoint of the loaded modules (generator).

        Bills a sequential streaming write of the already-relocated
        images (:func:`repro.gpu.loader.checkpoint_time`) and returns an
        immutable :class:`RuntimeSnapshot`.  An injected
        ``checkpoint.write`` fault corrupts the checkpoint *silently*:
        the snapshot is still returned and the damage only surfaces at
        restore time.
        """
        if self._pending:
            raise RuntimeError("cannot snapshot while loads are in flight")
        entries = tuple(
            (module.code_object, frozenset(module.resolved_symbols))
            for module in self._modules.values())
        total = sum(co.size_bytes for co, _ in entries)
        duration = checkpoint_time(total, self.device)
        start = self.env.now
        yield self.env.timeout(duration)
        corrupt = False
        if self.faults is not None and self.faults.checkpoint_corrupts():
            corrupt = True
            self.faults.counters.checkpoint_corruptions += 1
        self.trace.record(start, self.env.now, actor, Phase.CHECKPOINT,
                          "snapshot", size=total, modules=len(entries))
        return RuntimeSnapshot(device_name=self.device.name,
                               taken_at=self.env.now,
                               entries=entries, corrupt=corrupt)

    def restore(self, snapshot: RuntimeSnapshot, actor: str = "host"):
        """Restore a warm-state checkpoint (generator).

        Only the *delta* is billed: modules already resident cost
        nothing, missing ones are read back as one sequential image
        (:func:`repro.gpu.loader.restore_time`) and marked resident with
        their recorded resolved symbols -- no per-module load or resolve
        is replayed, and ``load_count`` does not move.  Raises
        :class:`CheckpointFault` when the snapshot was corrupted on
        write, :class:`RestoreFault` on an injected ``restore.load``
        failure; in both cases the caller must fall back to a cold path.
        """
        if snapshot.device_name != self.device.name:
            raise ValueError(
                f"snapshot taken on device {snapshot.device_name!r} cannot "
                f"be restored on {self.device.name!r}")
        if self._pending:
            raise RuntimeError("cannot restore while loads are in flight")
        missing = [(co, symbols) for co, symbols in snapshot.entries
                   if co.name not in self._modules]
        missing_bytes = sum(co.size_bytes for co, _ in missing)
        duration = restore_time(missing_bytes, self.device)
        start = self.env.now
        yield self.env.timeout(duration)
        if snapshot.corrupt:
            if self.faults is not None:
                self.faults.counters.restore_failures += 1
            self.trace.record(start, self.env.now, actor, Phase.FAULT,
                              "restore/corrupt", size=missing_bytes)
            raise CheckpointFault(
                "checkpoint failed checksum on restore (corrupted on write)")
        if self.faults is not None and self.faults.restore_fails():
            self.faults.counters.restore_failures += 1
            self.trace.record(start, self.env.now, actor, Phase.FAULT,
                              "restore/fault", size=missing_bytes)
            raise RestoreFault("warm-state restore failed")
        for code_object, symbols in missing:
            module = HipModule(code_object, loaded_at=self.env.now)
            module.resolved_symbols = set(symbols)
            self._modules[code_object.name] = module
            self.restored_names.add(code_object.name)
        self.restored_bytes += missing_bytes
        if self.faults is not None:
            self.faults.counters.warm_restores += 1
        self.trace.record(start, self.env.now, actor, Phase.RESTORE,
                          "restore", size=missing_bytes,
                          modules=len(missing))
        if self.metrics is not None:
            self.metrics.counter(
                "runtime_restored_bytes_total",
                "Bytes re-materialized from warm-state checkpoints",
            ).inc(missing_bytes, device=self.device.name)
        return len(missing)

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch_kernel(self, code_object: CodeObjectFile, symbol_name: str,
                      duration: float, actor: str = "host",
                      label: str = "", lazy: bool = True, **meta):
        """Launch one kernel (generator); returns its completion event.

        With ``lazy=True`` (default runtime behaviour) an absent code
        object is loaded on demand, stalling the calling thread -- this is
        the reactive path responsible for cold-start latency.  With
        ``lazy=False`` the module must already be resident
        (:class:`KernelNotLoadedError` otherwise), which is how PASK's
        issuing thread asserts that loading already happened.
        """
        name = code_object.name
        if not self.is_loaded(name) and not self.is_loading(name):
            if not lazy:
                raise KernelNotLoadedError(
                    f"code object {name!r} not loaded and lazy loading disabled")
        if not self.is_loaded(name):
            yield from self.module_load(code_object, actor=actor,
                                        reactive=True)
        module = self._modules[name]
        yield from self.get_function(module, symbol_name, actor=actor)
        attempt = 1
        while self.faults is not None and self.faults.launch_fails():
            # Injected transient launch error: the failed driver call
            # still costs a launch round-trip before the host re-issues.
            counters = self.faults.counters
            counters.launch_faults += 1
            fault_start = self.env.now
            yield self.env.timeout(self.device.kernel_launch_overhead_s)
            self.trace.record(fault_start, self.env.now, actor, Phase.FAULT,
                              f"{label or symbol_name}/launch-fault",
                              attempt=attempt)
            if attempt >= self.faults.plan.max_launch_attempts:
                raise LaunchFault(
                    f"launch of {symbol_name!r} failed after "
                    f"{attempt} attempts")
            counters.launch_retries += 1
            attempt += 1
        start = self.env.now
        yield self.env.timeout(self.device.kernel_launch_overhead_s)
        self.trace.record(start, self.env.now, actor, Phase.ISSUE,
                          label or symbol_name)
        # Causality: the EXEC span about to be recorded waited on this
        # code object's LOAD span, the symbol resolve, and the CHECK
        # span of its instruction (if any).  No-op when telemetry is off.
        self.spans.stage_exec_links(name, label or symbol_name,
                                    f"{name}:{symbol_name}")
        completion = self.stream.enqueue(duration, label or symbol_name, **meta)
        return completion

    def synchronize(self):
        """Device synchronize (generator): wait for the stream to drain."""
        start = self.env.now
        yield self.stream.synchronize()
        if self.env.now > start:
            self.trace.record(start, self.env.now, "host", Phase.OTHER, "sync")
