"""Simulated GPU devices and the HIP-like host runtime.

This subpackage substitutes for the parts of the stack a Python layer
cannot control on real hardware (the `repro = 2/5` gate): the HIP runtime's
lazy code-object loading path, module/symbol management and the in-order
GPU stream.  The loading semantics mirror Sec. II-A of the paper: before a
kernel launches, the runtime checks whether its code object is resident in
managed host memory; if not, it loads the ELF image, sets memory
permissions, and resolves the target symbol -- and that loading is what
dominates cold start.
"""

from repro.gpu.device import DeviceSpec, A100, MI100, RX6900XT, get_device, list_devices
from repro.gpu.codeobject import CodeObjectFile, KernelSymbol
from repro.gpu.loader import (checkpoint_time, load_time, restore_time,
                              symbol_resolve_time)
from repro.gpu.runtime import (HipModule, HipRuntime, KernelNotLoadedError,
                               RuntimeSnapshot)
from repro.gpu.stream import Stream

__all__ = [
    "A100",
    "CodeObjectFile",
    "DeviceSpec",
    "HipModule",
    "HipRuntime",
    "KernelNotLoadedError",
    "KernelSymbol",
    "MI100",
    "RX6900XT",
    "RuntimeSnapshot",
    "Stream",
    "checkpoint_time",
    "get_device",
    "list_devices",
    "load_time",
    "restore_time",
    "symbol_resolve_time",
]
