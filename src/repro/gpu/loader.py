"""Cost model for code-object loading.

Loading one code object (Sec. II-A) costs: a fixed driver entry cost, the
ELF read + relocation proportional to the image size, and a memory
permission pass.  Symbol resolution is charged per ``hipModuleGetFunction``.
"""

from __future__ import annotations

from repro.gpu.codeobject import CodeObjectFile
from repro.gpu.device import DeviceSpec

__all__ = ["load_time", "symbol_resolve_time", "checkpoint_time",
           "restore_time", "CHECKPOINT_WRITE_FACTOR", "RESTORE_SPEEDUP"]

# Warm-state checkpoint/restore cost constants (GPUReplay-style record/
# replay of the loaded-code-object registry).  A checkpoint is one
# sequential append of already-relocated images, so it streams much
# faster than the scattered ELF read + relocation of a load; a restore
# reads that single image back and re-maps it, skipping the per-module
# driver entry and relocation passes entirely.
CHECKPOINT_WRITE_FACTOR = 8.0   # write bandwidth vs. load bandwidth
RESTORE_SPEEDUP = 6.0           # restore bandwidth vs. load bandwidth


def load_time(code_object: CodeObjectFile, device: DeviceSpec,
              reactive: bool = False) -> float:
    """Seconds for ``hipModuleLoad`` of ``code_object`` on ``device``.

    ``reactive=True`` models the lazy launch-path load (stream sync,
    per-module lock acquisition, scattered file access), which is slower
    than a dedicated loader thread streaming modules back-to-back.
    """
    io_time = code_object.size_bytes / device.code_io_bandwidth
    total = device.code_load_base_s + io_time + device.mem_protect_s
    if reactive:
        total *= device.reactive_load_penalty
    return total


def symbol_resolve_time(device: DeviceSpec) -> float:
    """Seconds for one ``hipModuleGetFunction`` on ``device``."""
    return device.symbol_resolve_s


def checkpoint_time(n_bytes: int, device: DeviceSpec) -> float:
    """Seconds to write a warm-state checkpoint of ``n_bytes`` of loaded
    code objects on ``device``.

    One fixed serialization entry plus a sequential streaming write at
    ``CHECKPOINT_WRITE_FACTOR`` times the load bandwidth.
    """
    if n_bytes < 0:
        raise ValueError("checkpoint size must be non-negative")
    write = n_bytes / (device.code_io_bandwidth * CHECKPOINT_WRITE_FACTOR)
    return 0.5 * device.code_load_base_s + write


def restore_time(n_bytes: int, device: DeviceSpec) -> float:
    """Seconds to restore ``n_bytes`` of checkpointed code objects.

    One fixed map-in entry, a sequential image read at
    ``RESTORE_SPEEDUP`` times the load bandwidth, and a single memory
    permission pass for the whole image (instead of one per module).
    """
    if n_bytes < 0:
        raise ValueError("restore size must be non-negative")
    read = n_bytes / (device.code_io_bandwidth * RESTORE_SPEEDUP)
    return device.code_load_base_s + read + device.mem_protect_s
