"""Cost model for code-object loading.

Loading one code object (Sec. II-A) costs: a fixed driver entry cost, the
ELF read + relocation proportional to the image size, and a memory
permission pass.  Symbol resolution is charged per ``hipModuleGetFunction``.
"""

from __future__ import annotations

from repro.gpu.codeobject import CodeObjectFile
from repro.gpu.device import DeviceSpec

__all__ = ["load_time", "symbol_resolve_time"]


def load_time(code_object: CodeObjectFile, device: DeviceSpec,
              reactive: bool = False) -> float:
    """Seconds for ``hipModuleLoad`` of ``code_object`` on ``device``.

    ``reactive=True`` models the lazy launch-path load (stream sync,
    per-module lock acquisition, scattered file access), which is slower
    than a dedicated loader thread streaming modules back-to-back.
    """
    io_time = code_object.size_bytes / device.code_io_bandwidth
    total = device.code_load_base_s + io_time + device.mem_protect_s
    if reactive:
        total *= device.reactive_load_penalty
    return total


def symbol_resolve_time(device: DeviceSpec) -> float:
    """Seconds for one ``hipModuleGetFunction`` on ``device``."""
    return device.symbol_resolve_s
