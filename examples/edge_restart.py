"""Edge-device restart cycles with inter-request interval preloading.

On edge devices the inference service is regularly suspended or swapped
out under memory pressure and restarts cold (paper intro).  Once running,
requests arrive with idle gaps; PASK uses those gaps to load the
solutions it skipped (Sec. VI), so steady-state requests execute the
optimal kernels with nothing left to load.

Run:  python examples/edge_restart.py
"""

from repro import InferenceServer, Scheme
from repro.report import format_table

MODEL = "unet"          # semantic segmentation on-device
REQUESTS = 4
IDLE_GAP_S = 0.10       # cloud traces: seconds between requests


def describe(session, label):
    rows = []
    for result in session:
        rows.append([f"request {result.metadata['request']}",
                     result.total_time * 1e3,
                     result.loads,
                     result.reused_layers])
    print(format_table(["", "latency ms", "loads", "reused layers"], rows,
                       title=label))
    print()


def main() -> None:
    server = InferenceServer("MI100")

    print(f"Edge service restart: {MODEL!r} cold-starts, then serves "
          f"{REQUESTS} requests with {IDLE_GAP_S * 1e3:.0f} ms idle gaps\n")

    baseline_like = server.serve_session(
        MODEL, Scheme.PASK, n_requests=REQUESTS, interval_s=IDLE_GAP_S,
        interval_preload=False)
    describe(baseline_like, "PASK without interval preloading")

    with_preload = server.serve_session(
        MODEL, Scheme.PASK, n_requests=REQUESTS, interval_s=IDLE_GAP_S,
        interval_preload=True)
    describe(with_preload, "PASK with interval preloading (Sec. VI)")

    steady_without = baseline_like[-1].total_time
    steady_with = with_preload[-1].total_time
    print(f"Steady-state request latency: {steady_without * 1e3:.2f} ms -> "
          f"{steady_with * 1e3:.2f} ms "
          f"({steady_without / steady_with:.2f}x better) once the skipped "
          f"solutions were loaded during idle gaps.")


if __name__ == "__main__":
    main()
