"""Serving a custom model: build a graph, register it, inspect PASK.

Shows the full offline/online pipeline on a hand-built network: graph
construction, optimization passes, lowering (with the solutions the
find-db determined per layer) and a PASK cold start with cache statistics.

Run:  python examples/custom_model.py
"""

from repro import InferenceServer, Scheme
from repro.engine import InstrKind, lower
from repro.graph import GraphBuilder
from repro.report import format_table


def build_custom_graph():
    """A small detection-style backbone with repeated 3x3 stages."""
    b = GraphBuilder("my_detector")
    x = b.input("image", (1, 3, 160, 160))
    y = b.conv(x, 32, 3, stride=2, pad=1, name="stem")
    y = b.batchnorm(y)
    y = b.relu(y)
    for stage, channels in enumerate([64, 128, 256]):
        y = b.conv(y, channels, 3, pad=1, name=f"s{stage}_a")
        y = b.relu(y)
        y = b.conv(y, channels, 3, pad=1, name=f"s{stage}_b")
        y = b.relu(y)
        y = b.maxpool(y, 2, name=f"s{stage}_pool")
    head = b.conv(y, 32, 1, name="head")
    b.output(b.sigmoid(head))
    return b.finish()


def main() -> None:
    graph = build_custom_graph()
    server = InferenceServer("MI100")
    server.register_model(graph)

    # Offline: inspect what lowering decided.
    program = lower(graph, server.library)
    rows = []
    for instr in program.instructions:
        if instr.kind is InstrKind.MIOPEN_PRIMITIVE:
            rows.append([instr.index, instr.name, instr.kind.value,
                         instr.solution_name])
        else:
            rows.append([instr.index, instr.name, instr.kind.value, "-"])
    print(format_table(["#", "layer", "kind", "determined solution"], rows,
                       title="Lowered program (offline find results)"))

    # Online: cold starts.
    baseline = server.serve_cold("my_detector", Scheme.BASELINE)
    pask = server.serve_cold("my_detector", Scheme.PASK)
    print(f"\nBaseline cold start: {baseline.total_time * 1e3:.2f} ms "
          f"({baseline.loads} code objects loaded)")
    print(f"PASK cold start:     {pask.total_time * 1e3:.2f} ms "
          f"({pask.loads} loaded, {pask.skipped_loads} skipped by reuse)")
    print(f"Speedup: {baseline.total_time / pask.total_time:.2f}x, "
          f"milestone at layer {pask.milestone}")
    stats = pask.cache_stats
    if stats and stats.queries:
        print(f"Cache: {stats.queries} queries, hit rate "
              f"{stats.hit_rate:.0%}, {stats.lookups_per_query:.2f} "
              f"applicability checks per query")


if __name__ == "__main__":
    main()
