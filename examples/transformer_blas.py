"""Transformers and the BLAS boundary (Sec. VI "Library supporting").

Stock PASK only manages the DL primitive library; a vision transformer's
compute is GEMMs served by the BLAS library, which loads its kernels
reactively and out of PASK's reach -- so transformers gain little.  The
paper argues the extension to hipBLAS is straightforward; this example
runs it: ``PaskConfig(manage_blas=True)`` applies proactive loading and
categorical reuse to GEMM kernels too.

Run:  python examples/transformer_blas.py [model]
"""

import sys

from repro import InferenceServer, Scheme
from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.gpu import HipRuntime
from repro.report import format_table
from repro.sim import Environment


def run_managed(server, model):
    program = server._lowered(model, Scheme.PASK, 1)
    env = Environment()
    runtime = HipRuntime(env, server.device)
    middleware = PaskMiddleware(env, runtime, server.library, server.blas,
                                PaskConfig(manage_blas=True))
    outcome = {}

    def driver():
        stats = yield from middleware.execute(program)
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    outcome["total_time"] = env.now
    outcome["loads"] = runtime.load_count
    return outcome


def main(model: str = "vit") -> None:
    server = InferenceServer("MI100")
    baseline = server.serve_cold(model, Scheme.BASELINE)
    stock = server.serve_cold(model, Scheme.PASK)
    managed = run_managed(server, model)

    rows = [
        ["Baseline", baseline.total_time * 1e3, baseline.loads, 1.0],
        ["PaSK (stock)", stock.total_time * 1e3, stock.loads,
         baseline.total_time / stock.total_time],
        ["PaSK + BLAS", managed["total_time"] * 1e3, managed["loads"],
         baseline.total_time / managed["total_time"]],
    ]
    print(format_table(["scheme", "cold ms", "loads", "speedup"], rows,
                       title=f"{model!r}: extending PASK into the BLAS "
                             f"library"))
    print(f"\nWith BLAS managed, GEMM binaries are loaded proactively by "
          f"the loader thread (overlapped with parsing) instead of "
          f"reactively on the launch path; repeated attention/MLP shapes "
          f"then hit the resident-binary fast path. Reused layers: "
          f"{managed['reused_layers']} (stock: {stock.reused_layers}).")


if __name__ == "__main__":
    main(*(sys.argv[1:2] or []))
