"""Batch-size sweep: how cold-start gains shrink as the GPU saturates.

Regenerates Table II's trend for one model: larger inference batches
spend proportionally more time computing, so the loading overhead -- and
with it every scheme's speedup -- shrinks.

Run:  python examples/batch_sweep.py [model]
"""

import sys

from repro import InferenceServer, Scheme
from repro.report import format_table

BATCHES = (1, 4, 16, 64, 128)
SCHEMES = [Scheme.NNV12, Scheme.PASK, Scheme.IDEAL]


def main(model: str = "reg") -> None:
    server = InferenceServer("MI100")
    rows = []
    for scheme in SCHEMES:
        row = [scheme.label]
        for batch in BATCHES:
            base = server.serve_cold(model, Scheme.BASELINE, batch=batch)
            run = server.serve_cold(model, scheme, batch=batch)
            row.append(base.total_time / run.total_time)
        rows.append(row)
    print(format_table(["scheme"] + [f"batch {b}" for b in BATCHES], rows,
                       title=f"Cold-start speedups vs batch size ({model!r})"))
    print("\nAll schemes lose ground as the batch grows: the GPU is busier, "
          "so loading is a smaller share of the request.")


if __name__ == "__main__":
    main(*(sys.argv[1:2] or []))
