"""Serverless scale-out: cold starts under a request spike.

The intro scenario of the paper: a traffic spike forces the platform to
spawn fresh instances, each of which cold-starts the model.  This example
sweeps a burst of instances and compares end-to-end scale-out latency
(slowest instance ready) and total compute-seconds burned on cold starts
across serving schemes.

Run:  python examples/serverless_scaling.py
"""

from repro import InferenceServer, Scheme
from repro.report import bar_chart, format_table

MODEL = "eff"
INSTANCES = 8
SCHEMES = [Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL]


def main() -> None:
    server = InferenceServer("MI100")
    print(f"Spike: {INSTANCES} fresh instances must cold-start {MODEL!r}\n")

    rows = []
    ready_times = {}
    for scheme in SCHEMES:
        # Each instance is an independent fresh runtime; the simulation is
        # deterministic, so one cold run characterizes them all.
        per_instance = server.serve_cold(MODEL, scheme)
        ready = per_instance.total_time
        total_cpu = ready * INSTANCES
        ready_times[scheme.label] = ready * 1e3
        rows.append([scheme.label, ready * 1e3, total_cpu * 1e3,
                     per_instance.loads * INSTANCES])
    print(format_table(
        ["scheme", "instance ready ms", "total cold ms", "total loads"],
        rows, title="Scale-out cost per scheme"))

    print()
    print(bar_chart(ready_times, title="Time until the spike is absorbed "
                                       "(per-instance readiness, ms)",
                    precision=1))

    base = ready_times["Baseline"]
    pask = ready_times["PaSK"]
    print(f"\nPASK absorbs the spike {base / pask:.2f}x faster than the "
          f"default reactive workflow.")


if __name__ == "__main__":
    main()
