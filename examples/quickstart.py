"""Quickstart: cold-start one model under every serving scheme.

Run:  python examples/quickstart.py [model] [device]
e.g.  python examples/quickstart.py res MI100
"""

import sys

from repro import InferenceServer, Scheme
from repro.report import format_table


def main(model: str = "res", device: str = "MI100") -> None:
    server = InferenceServer(device)

    hot = server.serve_hot(model)
    print(f"Model {model!r} on {device}: hot (successive-iteration) run "
          f"takes {hot.total_time * 1e3:.2f} ms\n")

    baseline = server.serve_cold(model, Scheme.BASELINE)
    rows = []
    for scheme in [Scheme.BASELINE, Scheme.NNV12, Scheme.PASK_I,
                   Scheme.PASK_R, Scheme.PASK, Scheme.IDEAL]:
        result = server.serve_cold(model, scheme)
        rows.append([
            scheme.label,
            result.total_time * 1e3,
            baseline.total_time / result.total_time,
            result.loads,
            result.gpu_utilization,
            result.reused_layers,
        ])
    print(format_table(
        ["scheme", "cold ms", "speedup", "loads", "gpu util", "reused"],
        rows, title=f"Cold-start comparison for {model!r}"))

    pask = server.serve_cold(model, Scheme.PASK)
    print(f"\nPaSK details: milestone layer = {pask.milestone}, "
          f"skipped loads = {pask.skipped_loads}")
    if pask.cache_stats and pask.cache_stats.queries:
        print(f"categorical cache: hit rate "
              f"{pask.cache_stats.hit_rate:.0%}, "
              f"{pask.cache_stats.lookups_per_query:.2f} lookups/query")
    print(f"cold/hot slowdown without PASK: "
          f"{baseline.total_time / hot.total_time:.1f}x")


if __name__ == "__main__":
    main(*(sys.argv[1:3] or []))
